#include "asm/assembler.hh"

#include <map>

#include "asm/expander.hh"
#include "asm/parser.hh"
#include "isa/disasm.hh"
#include "isa/instruction.hh"
#include "support/bits.hh"
#include "support/logging.hh"

namespace risc1::assembler {

namespace {

/** Shared state of the two address/encode passes. */
class TwoPass
{
  public:
    TwoPass(std::vector<Unit> units, const AsmOptions &opts,
            AsmResult &result)
        : units_(std::move(units)), opts_(opts), result_(result)
    {}

    void
    run()
    {
        assignAddresses();
        if (!result_.errors.empty())
            return;
        encodeAll();
        if (!result_.errors.empty())
            return;
        chooseEntry();
        if (opts_.makeListing)
            makeListing();
    }

  private:
    void
    error(unsigned line, std::string msg)
    {
        result_.errors.push_back(AsmError{line, std::move(msg)});
    }

    /** Define a label; duplicate definitions are user errors. */
    void
    define(const std::string &name, uint32_t value, unsigned line)
    {
        auto [it, inserted] = symbols_.emplace(name, value);
        if (!inserted)
            error(line, "duplicate symbol '" + name + "'");
        (void)it;
    }

    /**
     * Resolve an expression; nullopt (with diagnostic) if impossible.
     * `here` is the value of the location counter "." at the point of
     * use (the unit's own address).
     */
    std::optional<int64_t>
    resolve(const Expr &expr, unsigned line, uint32_t here = 0)
    {
        int64_t value = expr.addend;
        if (expr.symbol == ".") {
            value += here;
        } else if (!expr.symbol.empty()) {
            auto it = symbols_.find(expr.symbol);
            if (it == symbols_.end()) {
                error(line, "undefined symbol '" + expr.symbol + "'");
                return std::nullopt;
            }
            value += it->second;
        }
        switch (expr.func) {
          case Expr::Func::None:
            return value;
          case Expr::Func::Hi13: {
            const auto u = static_cast<uint32_t>(value);
            return static_cast<int64_t>((u + 0x1000u) >> 13);
          }
          case Expr::Func::Lo13: {
            const auto u = static_cast<uint32_t>(value);
            return sext(u & 0x1fffu, 13);
          }
        }
        panic("resolve: bad Expr::Func");
    }

    /**
     * Pass A: walk the units assigning addresses, defining labels and
     * `.equ` symbols. Expressions consumed here (org/align/space/equ)
     * must resolve immediately; all others wait for pass B.
     */
    void
    assignAddresses()
    {
        uint32_t loc = opts_.defaultOrg;
        addresses_.resize(units_.size(), 0);

        for (size_t i = 0; i < units_.size(); ++i) {
            Unit &u = units_[i];
            // Instructions are implicitly word-aligned (mixing .ascii
            // data and code must not produce unfetchable code).
            if (u.kind == Unit::Kind::Inst)
                loc = static_cast<uint32_t>(roundUp(loc, 4));
            const bool labels_after_move = u.kind == Unit::Kind::Org ||
                                           u.kind == Unit::Kind::Align;
            if (!labels_after_move) {
                for (const std::string &label : u.labels)
                    define(label, loc, u.line);
            }

            switch (u.kind) {
              case Unit::Kind::Org: {
                auto value = resolve(u.values[0], u.line, loc);
                if (!value)
                    return;
                loc = static_cast<uint32_t>(*value);
                break;
              }
              case Unit::Kind::Align: {
                auto value = resolve(u.values[0], u.line, loc);
                if (!value)
                    return;
                if (*value <= 0 || !isPow2(static_cast<uint64_t>(*value))) {
                    error(u.line, ".align expects a power of two");
                    return;
                }
                loc = static_cast<uint32_t>(
                    roundUp(loc, static_cast<uint64_t>(*value)));
                break;
              }
              case Unit::Kind::Space: {
                auto value = resolve(u.values[0], u.line, loc);
                if (!value)
                    return;
                if (*value < 0) {
                    error(u.line, ".space expects a non-negative size");
                    return;
                }
                addresses_[i] = loc;
                loc += static_cast<uint32_t>(*value);
                break;
              }
              case Unit::Kind::Data:
                addresses_[i] = loc;
                loc += u.dataWidth * static_cast<uint32_t>(u.values.size());
                break;
              case Unit::Kind::Ascii:
                addresses_[i] = loc;
                loc += static_cast<uint32_t>(u.text.size());
                break;
              case Unit::Kind::Equ: {
                auto value = resolve(u.values[0], u.line, loc);
                if (!value)
                    return;
                define(u.text, static_cast<uint32_t>(*value), u.line);
                break;
              }
              case Unit::Kind::Entry:
                entrySymbol_ = u.text;
                entryLine_ = u.line;
                break;
              case Unit::Kind::Inst:
                addresses_[i] = loc;
                if (firstInstAddr_ == 0)
                    firstInstAddr_ = loc;
                loc += isa::InstBytes;
                break;
            }

            if (labels_after_move) {
                for (const std::string &label : u.labels)
                    define(label, loc, u.line);
            }
        }
    }

    /** Emit `width` little-endian bytes of `value` at `addr`. */
    void
    emitBytes(uint32_t addr, uint64_t value, unsigned width)
    {
        for (unsigned i = 0; i < width; ++i)
            result_.program.addByte(addr + i,
                                    static_cast<uint8_t>(value >> (8 * i)));
    }

    /** Pass B: resolve remaining expressions and encode everything. */
    void
    encodeAll()
    {
        for (size_t i = 0; i < units_.size(); ++i) {
            const Unit &u = units_[i];
            const uint32_t addr = addresses_[i];
            switch (u.kind) {
              case Unit::Kind::Org:
              case Unit::Kind::Align:
              case Unit::Kind::Equ:
              case Unit::Kind::Entry:
                break;
              case Unit::Kind::Space: {
                auto value = resolve(u.values[0], u.line, addr);
                for (int64_t b = 0; b < *value; ++b)
                    result_.program.addByte(addr +
                                            static_cast<uint32_t>(b), 0);
                break;
              }
              case Unit::Kind::Data: {
                uint32_t at = addr;
                for (const Expr &e : u.values) {
                    auto value = resolve(e, u.line, at);
                    if (!value)
                        return;
                    if (u.dataWidth < 8 &&
                        !fitsSigned(*value, u.dataWidth * 8) &&
                        !fitsUnsigned(static_cast<uint64_t>(*value),
                                      u.dataWidth * 8)) {
                        error(u.line,
                              strprintf("value %lld does not fit in %u "
                                        "bytes",
                                        static_cast<long long>(*value),
                                        u.dataWidth));
                        return;
                    }
                    emitBytes(at, static_cast<uint64_t>(*value),
                              u.dataWidth);
                    at += u.dataWidth;
                }
                break;
              }
              case Unit::Kind::Ascii: {
                uint32_t at = addr;
                for (char c : u.text)
                    result_.program.addByte(at++,
                                            static_cast<uint8_t>(c));
                break;
              }
              case Unit::Kind::Inst:
                if (!encodeInst(u, addr))
                    return;
                break;
            }
        }
    }

    /** Encode one instruction unit at its address. */
    bool
    encodeInst(const Unit &u, uint32_t addr)
    {
        isa::Instruction inst;
        inst.op = u.op;
        inst.scc = u.scc;
        inst.rd = u.rd;
        inst.rs1 = u.rs1;

        const isa::OpInfo &info = isa::opInfo(u.op);
        if (info.format == isa::Format::LongImm) {
            auto value = resolve(u.target, u.line, addr);
            if (!value)
                return false;
            int64_t y = *value;
            if (u.targetIsPcRel)
                y -= addr;
            if (u.op == isa::Opcode::Ldhi) {
                // Accept the natural unsigned 19-bit range too.
                if (!fitsSigned(y, isa::Imm19Bits) &&
                    !fitsUnsigned(static_cast<uint64_t>(y),
                                  isa::Imm19Bits)) {
                    error(u.line,
                          strprintf("ldhi value 0x%llx out of 19-bit "
                                    "range",
                                    static_cast<long long>(y)));
                    return false;
                }
                y = sext(static_cast<uint64_t>(y) &
                             mask(isa::Imm19Bits),
                         isa::Imm19Bits);
            } else if (!fitsSigned(y, isa::Imm19Bits)) {
                error(u.line,
                      strprintf("branch target out of range "
                                "(offset %lld)",
                                static_cast<long long>(y)));
                return false;
            }
            inst.imm19 = static_cast<int32_t>(y);
        } else {
            inst.imm = u.imm;
            if (u.imm) {
                auto value = resolve(u.s2Expr, u.line, addr);
                if (!value)
                    return false;
                if (!fitsSigned(*value, isa::Simm13Bits)) {
                    error(u.line,
                          strprintf("immediate %lld does not fit in 13 "
                                    "signed bits",
                                    static_cast<long long>(*value)));
                    return false;
                }
                inst.simm13 = static_cast<int32_t>(*value);
            } else {
                inst.rs2 = u.rs2;
            }
        }

        emitBytes(addr, isa::encode(inst), isa::InstBytes);
        result_.program.srcLines[addr] = u.line;
        ++result_.program.instructionCount;
        return true;
    }

    /** Pick the entry point: .entry > _start > main > first instruction. */
    void
    chooseEntry()
    {
        result_.program.symbols = symbols_;
        if (!entrySymbol_.empty()) {
            auto it = symbols_.find(entrySymbol_);
            if (it == symbols_.end()) {
                error(entryLine_,
                      "undefined entry symbol '" + entrySymbol_ + "'");
                return;
            }
            result_.program.entry = it->second;
            return;
        }
        for (const char *name : {"_start", "main"}) {
            auto it = symbols_.find(name);
            if (it != symbols_.end()) {
                result_.program.entry = it->second;
                return;
            }
        }
        result_.program.entry = firstInstAddr_ ? firstInstAddr_
                                               : opts_.defaultOrg;
    }

    /** Render a listing: address, word, disassembly, source line. */
    void
    makeListing()
    {
        std::string out;
        for (size_t i = 0; i < units_.size(); ++i) {
            const Unit &u = units_[i];
            if (u.kind != Unit::Kind::Inst)
                continue;
            const uint32_t addr = addresses_[i];
            const uint32_t word = *result_.program.wordAt(addr);
            out += strprintf("%08x  %08x  %s\n", addr, word,
                             isa::disassembleWord(word, addr).c_str());
        }
        result_.listing = std::move(out);
    }

    std::vector<Unit> units_;
    const AsmOptions &opts_;
    AsmResult &result_;

    std::map<std::string, uint32_t> symbols_;
    std::vector<uint32_t> addresses_;
    std::string entrySymbol_;
    unsigned entryLine_ = 0;
    uint32_t firstInstAddr_ = 0;
};

} // namespace

std::string
AsmResult::errorText() const
{
    std::string out;
    for (const AsmError &e : errors)
        out += strprintf("line %u: %s\n", e.line, e.message.c_str());
    return out;
}

AsmResult
assemble(std::string_view source, const AsmOptions &opts)
{
    AsmResult result;

    ParseResult parsed = parseSource(source);
    result.errors = parsed.errors;
    if (!result.errors.empty())
        return result;

    ExpandOptions exp_opts;
    exp_opts.autoDelaySlots = opts.autoDelaySlots;
    ExpandResult expanded = expand(parsed.stmts, exp_opts);
    result.errors = expanded.errors;
    if (!result.errors.empty())
        return result;

    if (opts.autoDelaySlots && opts.fillDelaySlots)
        result.slotStats = fillDelaySlots(expanded.units);
    else if (opts.autoDelaySlots) {
        // Count slots anyway so fill-rate comparisons are meaningful.
        for (const Unit &u : expanded.units) {
            if (u.kind == Unit::Kind::Inst && u.isAutoSlot)
                ++result.slotStats.totalSlots;
        }
    }

    TwoPass passes(std::move(expanded.units), opts, result);
    passes.run();
    return result;
}

Program
assembleOrDie(std::string_view source, const AsmOptions &opts)
{
    AsmResult result = assemble(source, opts);
    if (!result.ok())
        fatal("assembly failed:\n%s", result.errorText().c_str());
    return std::move(result.program);
}

} // namespace risc1::assembler
