/**
 * @file
 * Loadable program image produced by the assembler: byte segments, entry
 * point, symbol table, and source-line map. Also carries the static
 * statistics (code vs data bytes) used by the code-size experiment (E4).
 */

#ifndef RISC1_ASM_PROGRAM_HH
#define RISC1_ASM_PROGRAM_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace risc1::assembler {

/** One contiguous run of initialised bytes. */
struct Segment
{
    uint32_t base = 0;
    std::vector<uint8_t> bytes;
};

/** Assembled program image. */
class Program
{
  public:
    /** Contiguous initialised regions, sorted by base, non-overlapping. */
    std::vector<Segment> segments;

    /** Address where execution starts (label `_start`, else image base). */
    uint32_t entry = 0;

    /** Label values. */
    std::map<std::string, uint32_t> symbols;

    /** Instruction address -> 1-based source line (for tracing). */
    std::map<uint32_t, unsigned> srcLines;

    /** Static machine-instruction count (delay-slot NOPs included). */
    unsigned instructionCount = 0;

    /** Bytes occupied by instructions. */
    uint32_t codeBytes() const { return instructionCount * 4; }

    /** Total initialised bytes (code + data). */
    uint32_t totalBytes() const;

    /** Value of a symbol, if defined. */
    std::optional<uint32_t> symbol(const std::string &name) const;

    /** Append one byte at `addr` (assembler use; keeps segments merged). */
    void addByte(uint32_t addr, uint8_t byte);

    /** Read back one byte; nullopt outside any segment. */
    std::optional<uint8_t> byteAt(uint32_t addr) const;

    /** Read back a 32-bit little-endian word; nullopt if incomplete. */
    std::optional<uint32_t> wordAt(uint32_t addr) const;
};

} // namespace risc1::assembler

#endif // RISC1_ASM_PROGRAM_HH
