/**
 * @file
 * Parsed-source representation shared by the parser, pseudo-instruction
 * expander, delay-slot optimizer and the encoder passes.
 */

#ifndef RISC1_ASM_AST_HH
#define RISC1_ASM_AST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace risc1::assembler {

/**
 * A linear expression: optional symbol plus constant addend, optionally
 * wrapped in one of the immediate-splitting functions used to synthesise
 * 32-bit constants from the 13-bit immediate field (experiment A2):
 * `hi13(x) = (x + 0x1000) >> 13` and `lo13(x) = sext13(x & 0x1fff)`,
 * chosen so `(hi13(x) << 13) + lo13(x) == x` for all 32-bit x.
 */
struct Expr
{
    enum class Func : uint8_t { None, Hi13, Lo13 };

    Func func = Func::None;
    std::string symbol; //!< empty means pure constant
    int64_t addend = 0;

    bool isConst() const { return symbol.empty() && func == Func::None; }

    static Expr
    constant(int64_t value)
    {
        Expr e;
        e.addend = value;
        return e;
    }

    static Expr
    sym(std::string name, int64_t addend = 0)
    {
        Expr e;
        e.symbol = std::move(name);
        e.addend = addend;
        return e;
    }
};

/** One instruction or directive operand. */
struct Operand
{
    enum class Kind : uint8_t
    {
        Register, //!< rN / alias
        Value,    //!< expression (immediate, label, condition name)
        Memory,   //!< (rX)disp or (rX)rY
        String,   //!< only for .ascii/.asciz
    };

    Kind kind = Kind::Value;
    unsigned reg = 0;         //!< Register
    Expr expr;                //!< Value; Memory displacement
    unsigned base = 0;        //!< Memory base register
    bool indexIsReg = false;  //!< Memory uses a register index
    unsigned indexReg = 0;    //!< Memory register index
    std::string str;          //!< String payload
};

/** One parsed source statement (a line may define labels and one stmt). */
struct Stmt
{
    enum class Kind : uint8_t { Empty, Instruction, Directive };

    Kind kind = Kind::Empty;
    std::vector<std::string> labels;
    std::string mnemonic; //!< lower-case; directives keep leading '.'
    std::vector<Operand> operands;
    unsigned line = 0; //!< 1-based source line
};

/** An assembly-time diagnostic. */
struct AsmError
{
    unsigned line = 0;
    std::string message;
};

/**
 * A concrete machine statement after pseudo expansion. Instructions keep
 * their operand expressions unresolved until the final pass so the
 * delay-slot optimizer may still reorder them.
 */
struct Unit
{
    enum class Kind : uint8_t
    {
        Inst,  //!< one machine instruction
        Org,   //!< set location counter
        Align, //!< pad to power-of-two boundary
        Space, //!< reserve zeroed bytes
        Data,  //!< emit literal values (.word/.half/.byte)
        Ascii, //!< emit string bytes
        Equ,   //!< define symbol `text` = values[0]
        Entry, //!< set program entry point to symbol `text`
    };

    Kind kind = Kind::Inst;
    std::vector<std::string> labels;
    unsigned line = 0;

    // -- Kind::Inst --
    isa::Opcode op = isa::Opcode::Add;
    bool scc = false;
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    bool imm = false;       //!< short format: s2 is an expression
    uint8_t rs2 = 0;        //!< short format register s2
    Expr s2Expr;            //!< short format immediate expression
    Expr target;            //!< long format Y (branch target / LDHI value)
    bool targetIsPcRel = false; //!< resolve target as (value - pc)
    bool isAutoSlot = false;    //!< assembler-inserted delay-slot NOP

    // -- Data-ish kinds --
    unsigned dataWidth = 4;        //!< bytes per element for Data
    std::vector<Expr> values;      //!< Data elements / Org / Align / Space
    std::string text;              //!< Ascii payload (already unescaped)

    /** Size in bytes once the location counter is known (not Org/Align). */
    bool hasFixedSize() const { return kind != Kind::Org; }
};

} // namespace risc1::assembler

#endif // RISC1_ASM_AST_HH
