/**
 * @file
 * Two-pass RISC I assembler: text -> Program image. See README.md for
 * the accepted syntax. Pseudo-instruction expansion and the delay-slot
 * optimizer run between the passes.
 */

#ifndef RISC1_ASM_ASSEMBLER_HH
#define RISC1_ASM_ASSEMBLER_HH

#include <string>
#include <string_view>
#include <vector>

#include "asm/ast.hh"
#include "asm/optimizer.hh"
#include "asm/program.hh"

namespace risc1::assembler {

/** Assembly options. */
struct AsmOptions
{
    /** Insert a NOP delay slot after every control transfer. */
    bool autoDelaySlots = true;
    /** Run the delay-slot filling optimizer (needs autoDelaySlots). */
    bool fillDelaySlots = true;
    /** Location counter before the first `.org`. */
    uint32_t defaultOrg = 0x1000;
    /** Produce a human-readable listing alongside the image. */
    bool makeListing = false;
};

/** Assembly outcome: image plus diagnostics and slot statistics. */
struct AsmResult
{
    Program program;
    std::vector<AsmError> errors;
    SlotStats slotStats;
    std::string listing;

    bool ok() const { return errors.empty(); }

    /** All error messages joined, for convenient reporting. */
    std::string errorText() const;
};

/** Assemble a source text. Collects user errors; never throws. */
AsmResult assemble(std::string_view source, const AsmOptions &opts = {});

/**
 * Assemble and insist on success: throws FatalError listing the
 * diagnostics otherwise. Convenience for workloads and examples.
 */
Program assembleOrDie(std::string_view source, const AsmOptions &opts = {});

} // namespace risc1::assembler

#endif // RISC1_ASM_ASSEMBLER_HH
