/**
 * @file
 * Pseudo-instruction expansion. Turns parsed statements into concrete
 * machine Units, synthesising 32-bit constants via LDHI/ADD pairs,
 * expanding branch pseudos, and (in auto mode) inserting the delay-slot
 * NOP that follows every transfer of control.
 */

#ifndef RISC1_ASM_EXPANDER_HH
#define RISC1_ASM_EXPANDER_HH

#include <vector>

#include "asm/ast.hh"

namespace risc1::assembler {

/** Expansion options. */
struct ExpandOptions
{
    /**
     * Auto mode (default): the assembler inserts a NOP after every
     * control transfer, which the optimizer may later fill. Explicit
     * mode: the programmer writes delay slots themselves (used by tests
     * that pin the delayed-transfer semantics).
     */
    bool autoDelaySlots = true;
};

/** Result of expansion. */
struct ExpandResult
{
    std::vector<Unit> units;
    std::vector<AsmError> errors;

    bool ok() const { return errors.empty(); }
};

/** Expand all statements. Collects (does not throw) user errors. */
ExpandResult expand(const std::vector<Stmt> &stmts,
                    const ExpandOptions &opts = {});

} // namespace risc1::assembler

#endif // RISC1_ASM_EXPANDER_HH
