; memdump.s — build a small data structure and checksum it.
;
;   build/examples/riscas programs/memdump.s -o /tmp/memdump.r1o
;   build/examples/riscas /tmp/memdump.r1o     ; disassemble the object
;
; Exercises data directives, the location counter, byte/halfword
; access, and the hi13/lo13 constant-synthesis operators.

        .equ RESULT, 3840
        .equ COUNT, 8

_start: mov   table, r2
        clr   r16             ; checksum
        clr   r17             ; index
loop:   cmp   r17, COUNT
        bge   done
        sll   r17, 2, r18
        ldl   (r2)r18, r19
        xor   r16, r19, r16
        sll   r16, 1, r18     ; rotate-ish mix
        srl   r16, 31, r16
        or    r16, r18, r16
        add   r17, 1, r17
        b     loop
done:   mov   tag, r18        ; fold in the tag byte (address > 13-bit
        ldbu  (r18)0, r19     ; displacement, so load it to a register)
        add   r16, r19, r16
        stl   r16, (r0)RESULT
        halt

        .align 4
table:  .word 0x12345678, 0x9abcdef0
        .word table           ; the table's own address
        .word .+4, .+0        ; location-counter arithmetic
        .half 0xbeef, 0xcafe
        .word 'A', -1
tag:    .byte 7
msg:    .asciz "risc-i"
