; factorial.s — recursive factorial in RISC I assembly.
;
;   build/examples/riscas programs/factorial.s
;   build/examples/trace_debugger programs/factorial.s 200
;
; Demonstrates the window calling convention: the argument arrives in
; in0 (r26), the recursive argument goes out in out0 (r10), and the
; multiply is a software subroutine (RISC I has no MUL instruction).

        .equ RESULT, 3840

_start: mov   10, r10         ; factorial(10)
        call  fact
        stl   r10, (r0)RESULT
        halt

; fact(n): n in in0; result returned through the window overlap.
fact:   cmp   r26, 1
        bgt   recur
        mov   1, r26
        ret
recur:  sub   r26, 1, r10
        call  fact            ; r10 = fact(n-1)
        mov   r26, r11        ; mul32(fact(n-1), n)
        call  mul32
        mov   r10, r26
        ret

; mul32(a, b): shift-add multiply (from the runtime library).
mul32:  clr   r16
        mov   r26, r17
        mov   r27, r18
mloop:  cmp   r18, 0
        beq   mdone
        and   r18, 1, r19
        cmp   r19, 0
        beq   mskip
        add   r16, r17, r16
mskip:  sll   r17, 1, r17
        srl   r18, 1, r18
        b     mloop
mdone:  mov   r16, r26
        ret
