/**
 * @file
 * Ablation A1: the register-window win in isolation — 8 windows vs a
 * degenerate 2-window file that spills on every call.
 */

#include <iostream>

#include "core/cli.hh"
#include "core/experiments.hh"
#include "core/parallel.hh"

int
main(int argc, char **argv)
{
    using namespace risc1::core;
    const BenchCli cli = parseBenchCli(
        argc, argv,
        "A1: the register-window win in isolation — 8 windows vs a\n"
        "degenerate 2-window file that spills on every call.");
    auto rows = windowAblation(cli.resolvedJobs);
    std::cout << windowAblationTable(rows) << "\n";
    return 0;
}
