/**
 * @file
 * Ablation A1: the register-window win in isolation — 8 windows vs a
 * degenerate 2-window file that spills on every call.
 */

#include <iostream>

#include "core/experiments.hh"

int
main()
{
    auto rows = risc1::core::windowAblation();
    std::cout << risc1::core::windowAblationTable(rows) << "\n";
    return 0;
}
