# End-to-end byte-identity check for the campaign fleet: the fleet's
# stdout (R1 campaign table + R3 AVF table) must be byte-identical to a
# single-process `bench_fault_campaign --avf` run, whatever happens to
# the coordinator or its workers along the way:
#
#   1. clean subprocess runs at worker counts 1 and 4,
#   2. a coordinator "crash" (--halt-after, exit 3) resumed warm from
#      the shard cache, in flat mode at 1 worker and --tally at 4,
#   3. chaos-injected worker failures (RISC1_FLEET_CHAOS: one shard
#      crashes, one hangs until the watchdog kills it) recovered by
#      the re-queue path,
#   4. a poisoned cache entry rejected and recomputed,
#   5. the pure in-process fallback.
#
# Run by the bench_campaign_fleet_determinism ctest. FLEET is the
# campaign_fleet executable, WORKER is bench_fault_campaign, WORKDIR a
# scratch directory.

set(base_args 3 7)
set(scratch ${WORKDIR}/fleet_determinism)
file(REMOVE_RECURSE ${scratch})
file(MAKE_DIRECTORY ${scratch})

# Small shards so every phase gets several of them (3 injections x the
# suite; ordinals 0 and 1 are guaranteed to exist for the chaos spec).
set(fleet_args ${base_args} --shard-size 4 --worker-exe ${WORKER})

execute_process(
    COMMAND ${WORKER} ${base_args} --avf
    OUTPUT_VARIABLE reference
    RESULT_VARIABLE status)
if(NOT status EQUAL 0)
    message(FATAL_ERROR "reference campaign failed: status ${status}")
endif()

macro(check_fleet pretty expect_status)
    execute_process(
        COMMAND ${ARGN}
        OUTPUT_VARIABLE output
        RESULT_VARIABLE status)
    if(NOT status EQUAL ${expect_status})
        message(FATAL_ERROR
            "${pretty}: status ${status}, expected ${expect_status}")
    endif()
    if(${expect_status} EQUAL 0 AND NOT output STREQUAL reference)
        message(FATAL_ERROR
            "${pretty}: tables differ from the single-process "
            "reference:\n${output}\nreference:\n${reference}")
    endif()
    if(NOT ${expect_status} EQUAL 0 AND NOT output STREQUAL "")
        message(FATAL_ERROR
            "${pretty}: a halted fleet must print no tables, got:\n"
            "${output}")
    endif()
endmacro()

# 1. Clean subprocess runs, fresh cache each, workers 1 and 4.
check_fleet("fleet --workers 1" 0
    ${FLEET} ${fleet_args} --workers 1 --cache-dir ${scratch}/w1)
check_fleet("fleet --workers 4" 0
    ${FLEET} ${fleet_args} --workers 4 --cache-dir ${scratch}/w4)

# 2a. Kill-and-resume, flat aggregation, 1 worker: halt after 2 merged
# shards (simulated coordinator crash, exit 3, no tables), then resume
# from the partially-populated cache.
check_fleet("fleet halt (flat, 1 worker)" 3
    ${FLEET} ${fleet_args} --workers 1 --cache-dir ${scratch}/resume1
        --halt-after 2)
check_fleet("fleet resume (flat, 1 worker)" 0
    ${FLEET} ${fleet_args} --workers 1 --cache-dir ${scratch}/resume1)

# 2b. The same interruption with --tally streaming workers at 4
# workers; the resumed tables must still match the flat reference.
check_fleet("fleet halt (--tally, 4 workers)" 3
    ${FLEET} ${fleet_args} --workers 4 --cache-dir ${scratch}/resume4
        --tally --halt-after 2)
check_fleet("fleet resume (--tally, 4 workers)" 0
    ${FLEET} ${fleet_args} --workers 4 --cache-dir ${scratch}/resume4
        --tally)

# 3. Chaos: shard 0's first worker crashes, shard 1's first worker
# hangs until the 2-second watchdog kills it; both re-queue, retry
# clean, and the merged tables are unchanged.
check_fleet("fleet chaos crash+hang" 0
    ${CMAKE_COMMAND} -E env RISC1_FLEET_CHAOS=crash:0,hang:1
        ${FLEET} ${fleet_args} --workers 2 --cache-dir ${scratch}/chaos
        --watchdog-sec 2)

# 4. Poison one cached shard record (overwrite with garbage): the
# coordinator must reject and recompute it, not merge it.
file(GLOB cached ${scratch}/w1/*.shard)
list(GET cached 0 victim)
file(WRITE ${victim} "garbage, not a shard record")
check_fleet("fleet poisoned cache" 0
    ${FLEET} ${fleet_args} --workers 1 --cache-dir ${scratch}/w1)

# 5. In-process fallback (no subprocesses, no cache).
check_fleet("fleet --in-process" 0
    ${FLEET} ${base_args} --shard-size 4 --in-process --no-cache)

message(STATUS
    "fleet tables byte-identical across workers, interruption, chaos, "
    "cache poisoning, and in-process fallback")
