/**
 * @file
 * Pipeline-organisation study (the paper's §"future work" direction,
 * realised as RISC II): two-stage fetch/execute vs a three-stage
 * organisation with load-use interlocks but a shorter cycle. Prints
 * cycles, stall breakdown, and wall-time at each design's cycle time
 * for the whole suite.
 */

#include <iostream>
#include <string>
#include <vector>

#include "core/cli.hh"
#include "core/parallel.hh"
#include "core/table.hh"
#include "sim/pipeline.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace risc1;
    using core::cell;

    const core::BenchCli cli = core::parseBenchCli(
        argc, argv,
        "Pipeline-organisation study: two-stage fetch/execute vs a\n"
        "three-stage organisation with load-use interlocks but a\n"
        "shorter cycle, over the whole suite.");

    struct RowResult
    {
        std::vector<std::string> cells;
        std::string error;
    };
    const auto &suite = workloads::allWorkloads();
    const auto results = core::ParallelRunner(
        cli.resolvedJobs).map<RowResult>(
        suite.size(), [&](size_t slot) {
        const auto &wl = suite[slot];
        RowResult out;
        assembler::Program prog =
            workloads::buildRisc(wl, wl.defaultScale);

        sim::Cpu cpu2;
        cpu2.load(prog);
        sim::PipelineModel two(sim::PipelineVariant::TwoStage);
        auto r2 = sim::runWithPipeline(cpu2, two);

        sim::Cpu cpu3;
        cpu3.load(prog);
        sim::PipelineModel three(sim::PipelineVariant::ThreeStage);
        auto r3 = sim::runWithPipeline(cpu3, three);

        if (!r2.halted() || !r3.halted()) {
            out.error = wl.name + " failed";
            return out;
        }
        const double us2 = two.stats().timeUs();
        const double us3 = three.stats().timeUs();
        out.cells = {wl.name, cell(two.stats().cycles),
                     cell(three.stats().cycles),
                     cell(three.stats().loadUseInterlocks),
                     cell(three.stats().fetchStallCycles), cell(us2, 1),
                     cell(us3, 1), cell(us2 / us3)};
        return out;
    });

    core::Table table({"program", "2-stage cyc", "3-stage cyc",
                       "interlocks", "fetch stalls", "2-stage us",
                       "3-stage us", "3-stage gain"});
    for (const RowResult &result : results) {
        if (!result.error.empty()) {
            std::cerr << result.error << "\n";
            return 1;
        }
        table.row(result.cells);
    }
    std::cout << "Pipeline organisation study: 2-stage (RISC I, 400 ns) "
                 "vs 3-stage (RISC II direction, 330 ns)\n"
              << table.str() << "\n";
    return 0;
}
