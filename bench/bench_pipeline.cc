/**
 * @file
 * Pipeline-organisation study (the paper's §"future work" direction,
 * realised as RISC II): two-stage fetch/execute vs a three-stage
 * organisation with load-use interlocks but a shorter cycle. Prints
 * cycles, stall breakdown, and wall-time at each design's cycle time
 * for the whole suite.
 */

#include <iostream>

#include "core/table.hh"
#include "sim/pipeline.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace risc1;
    using core::cell;

    core::Table table({"program", "2-stage cyc", "3-stage cyc",
                       "interlocks", "fetch stalls", "2-stage us",
                       "3-stage us", "3-stage gain"});
    for (const auto &wl : workloads::allWorkloads()) {
        assembler::Program prog =
            workloads::buildRisc(wl, wl.defaultScale);

        sim::Cpu cpu2;
        cpu2.load(prog);
        sim::PipelineModel two(sim::PipelineVariant::TwoStage);
        auto r2 = sim::runWithPipeline(cpu2, two);

        sim::Cpu cpu3;
        cpu3.load(prog);
        sim::PipelineModel three(sim::PipelineVariant::ThreeStage);
        auto r3 = sim::runWithPipeline(cpu3, three);

        if (!r2.halted() || !r3.halted()) {
            std::cerr << wl.name << " failed\n";
            return 1;
        }
        const double us2 = two.stats().timeUs();
        const double us3 = three.stats().timeUs();
        table.row({wl.name, cell(two.stats().cycles),
                   cell(three.stats().cycles),
                   cell(three.stats().loadUseInterlocks),
                   cell(three.stats().fetchStallCycles), cell(us2, 1),
                   cell(us3, 1), cell(us2 / us3)});
    }
    std::cout << "Pipeline organisation study: 2-stage (RISC I, 400 ns) "
                 "vs 3-stage (RISC II direction, 330 ns)\n"
              << table.str() << "\n";
    return 0;
}
