# End-to-end byte-identity check for the *distributed* campaign fleet:
# a coordinator serving remote TCP workers over loopback must print
# tables byte-identical to a single-process `bench_fault_campaign
# --avf` run, whatever the workers do to it along the way:
#
#   1. a clean run over 2 spawned `--worker-connect` workers,
#   2. chaos: one worker killed mid-shard (crash) and one sending a
#      deliberately corrupt frame — both quarantined, shards re-queued,
#   3. chaos: a worker handing back a bit-flipped shard record, caught
#      by cache validation (checksum), rejected, never merged,
#   4. chaos: a worker that hangs and stops heartbeating, detected by
#      the heartbeat-stall watchdog,
#   5. a coordinator "crash" (--halt-after, exit 3) resumed warm from
#      the shard cache through the same TCP pool,
#   6. graceful degradation: a pool nobody connects to, falling back
#      to subprocess workers and to pure in-process execution,
#   7. two tenant campaigns interleaved over one worker pool, each
#      byte-identical to its own solo run.
#
# Run by the bench_campaign_fleet_tcp_determinism ctest. FLEET is the
# campaign_fleet executable, WORKER is bench_fault_campaign, WORKDIR a
# scratch directory.

set(base_args 3 7)
set(scratch ${WORKDIR}/fleet_tcp_determinism)
file(REMOVE_RECURSE ${scratch})
file(MAKE_DIRECTORY ${scratch})

# Small shards so every phase gets several (ordinals 0 and 1 always
# exist for the chaos specs); 2 remote workers throughout.
set(tcp_args ${base_args} --shard-size 4 --listen 0 --spawn-workers 2
    --worker-exe ${WORKER})

execute_process(
    COMMAND ${WORKER} ${base_args} --avf
    OUTPUT_VARIABLE reference
    RESULT_VARIABLE status)
if(NOT status EQUAL 0)
    message(FATAL_ERROR "reference campaign failed: status ${status}")
endif()

macro(check_fleet pretty expect_status)
    execute_process(
        COMMAND ${ARGN}
        OUTPUT_VARIABLE output
        RESULT_VARIABLE status)
    if(NOT status EQUAL ${expect_status})
        message(FATAL_ERROR
            "${pretty}: status ${status}, expected ${expect_status}")
    endif()
    if(${expect_status} EQUAL 0 AND NOT output STREQUAL reference)
        message(FATAL_ERROR
            "${pretty}: tables differ from the single-process "
            "reference:\n${output}\nreference:\n${reference}")
    endif()
    if(NOT ${expect_status} EQUAL 0 AND NOT output STREQUAL "")
        message(FATAL_ERROR
            "${pretty}: a halted fleet must print no tables, got:\n"
            "${output}")
    endif()
endmacro()

# 1. Clean distributed run: every shard computed by a remote worker.
check_fleet("tcp fleet clean" 0
    ${FLEET} ${tcp_args} --cache-dir ${scratch}/clean)

# 2. Worker killed mid-shard (shard 0) and a corrupt frame injected on
# the wire (shard 1): both workers are quarantined, both shards
# re-queued; the spare worker (or degradation) finishes the campaign.
check_fleet("tcp fleet chaos crash+corrupt-frame" 0
    ${CMAKE_COMMAND} -E env RISC1_FLEET_CHAOS=crash:0,corrupt-frame:1
        ${FLEET} ${tcp_args} --cache-dir ${scratch}/crash
        --remote-grace 1)

# 3. A worker that exits cleanly but returns a bit-flipped shard
# record: the coordinator must catch it in cache validation
# (checksum -> Corrupt), quarantine the worker, and re-queue — a
# corrupt tally must never reach the merged table.
check_fleet("tcp fleet chaos corrupt-record" 0
    ${CMAKE_COMMAND} -E env RISC1_FLEET_CHAOS=corrupt-record:0
        ${FLEET} ${tcp_args} --cache-dir ${scratch}/corrupt
        --remote-grace 1)

# 4. A worker that hangs and stops heartbeating on shard 1: the
# heartbeat-stall watchdog (4 x 0.25 s of silence) must reclaim the
# shard without waiting for any wall-clock timeout.
check_fleet("tcp fleet chaos heartbeat stall" 0
    ${CMAKE_COMMAND} -E env RISC1_FLEET_CHAOS=hang:1
        ${FLEET} ${tcp_args} --cache-dir ${scratch}/hang
        --heartbeat-sec 0.25 --remote-grace 1)

# 5. Coordinator crash mid-campaign (--halt-after 2, exit 3, no
# tables), then a warm resume over a fresh TCP pool: cached shards
# merge without re-execution, the rest run remotely, and the tables
# come out byte-identical.
check_fleet("tcp fleet halt" 3
    ${FLEET} ${tcp_args} --cache-dir ${scratch}/resume --halt-after 2)
check_fleet("tcp fleet resume" 0
    ${FLEET} ${tcp_args} --cache-dir ${scratch}/resume)

# 6. Graceful degradation: a listening pool that no worker ever
# connects to. With a worker binary the shards fall back to
# subprocesses; with --in-process they fall back to in-process
# execution. Both must complete with identical tables.
check_fleet("tcp fleet degrade to subprocess" 0
    ${FLEET} ${base_args} --shard-size 4 --listen 0
        --worker-exe ${WORKER} --cache-dir ${scratch}/degrade
        --remote-grace 0.3)
check_fleet("tcp fleet degrade to in-process" 0
    ${FLEET} ${base_args} --shard-size 4 --listen 0 --in-process
        --no-cache --remote-grace 0.3)

# 7. Multi-tenant: a second campaign (--also 2:13) interleaved over
# the same pool. The output is tenant 0's tables followed by a tenant
# banner and tenant 1's tables, each byte-identical to its solo run.
execute_process(
    COMMAND ${WORKER} 2 13 --avf
    OUTPUT_VARIABLE reference_b
    RESULT_VARIABLE status)
if(NOT status EQUAL 0)
    message(FATAL_ERROR "tenant-1 reference failed: status ${status}")
endif()
set(expected_multi
    "${reference}== tenant 1: injections=2 seed=13 ==\n${reference_b}")
execute_process(
    COMMAND ${FLEET} ${tcp_args} --cache-dir ${scratch}/tenants
        --also 2:13
    OUTPUT_VARIABLE output
    RESULT_VARIABLE status)
if(NOT status EQUAL 0)
    message(FATAL_ERROR "tcp fleet multi-tenant: status ${status}")
endif()
if(NOT output STREQUAL expected_multi)
    message(FATAL_ERROR
        "tcp fleet multi-tenant: tables differ from the two solo "
        "references:\n${output}\nexpected:\n${expected_multi}")
endif()

message(STATUS
    "tcp fleet tables byte-identical across worker kill, corrupt "
    "frame, corrupt record, heartbeat stall, coordinator crash + "
    "resume, degradation, and multi-tenant scheduling")
