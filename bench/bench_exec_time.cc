/**
 * @file
 * Experiment E5: execution time of every suite program on both
 * machines at the paper's cycle-time assumptions.
 */

#include <iostream>

#include "core/cli.hh"
#include "core/experiments.hh"
#include "core/parallel.hh"

int
main(int argc, char **argv)
{
    using namespace risc1::core;
    const BenchCli cli = parseBenchCli(
        argc, argv,
        "E5: execution time of every suite program on both machines at\n"
        "the paper's cycle-time assumptions.");
    auto rows = execTime(cli.resolvedJobs);
    std::cout << execTimeTable(rows) << "\n";
    return 0;
}
