/**
 * @file
 * Experiment E5: execution time of every suite program on both
 * machines at the paper's cycle-time assumptions.
 */

#include <iostream>

#include "core/experiments.hh"

int
main()
{
    auto rows = risc1::core::execTime();
    std::cout << risc1::core::execTimeTable(rows) << "\n";
    return 0;
}
