/**
 * @file
 * Experiment E3: procedure call/return cost, RISC I register windows
 * vs vax80 CALLS/RET, across argument counts.
 */

#include <iostream>

#include "core/experiments.hh"

int
main()
{
    auto rows = risc1::core::callOverhead();
    std::cout << risc1::core::callOverheadTable(rows) << "\n";
    return 0;
}
