/**
 * @file
 * Experiment E3: procedure call/return cost, RISC I register windows
 * vs vax80 CALLS/RET, across argument counts.
 */

#include <iostream>

#include "core/cli.hh"
#include "core/experiments.hh"
#include "core/parallel.hh"

int
main(int argc, char **argv)
{
    using namespace risc1::core;
    const BenchCli cli = parseBenchCli(
        argc, argv,
        "E3: procedure call/return cost, RISC I register windows vs\n"
        "vax80 CALLS/RET, across argument counts.");
    auto rows = callOverhead(6, 2000, cli.resolvedJobs);
    std::cout << callOverheadTable(rows) << "\n";
    return 0;
}
