/**
 * @file
 * Experiment E8: dynamic instruction mix on RISC I, plus the A2
 * immediate-usage table (constant synthesis statistics).
 */

#include <iostream>

#include "core/experiments.hh"

int
main()
{
    std::cout << risc1::core::instrMixTable(risc1::core::instrMix())
              << "\n";
    std::cout << risc1::core::opcodeFrequencyTable(
                     risc1::core::opcodeFrequencies())
              << "\n";
    std::cout << risc1::core::immediateUsageTable(
                     risc1::core::immediateUsage())
              << "\n";
    return 0;
}
