/**
 * @file
 * Experiment E8: dynamic instruction mix on RISC I, plus the A2
 * immediate-usage table (constant synthesis statistics).
 */

#include <iostream>

#include "core/cli.hh"
#include "core/experiments.hh"
#include "core/parallel.hh"

int
main(int argc, char **argv)
{
    using namespace risc1::core;
    const BenchCli cli = parseBenchCli(
        argc, argv,
        "E8: dynamic instruction mix on RISC I, plus the A2\n"
        "immediate-usage table (constant synthesis statistics).");
    const unsigned jobs = cli.resolvedJobs;
    std::cout << instrMixTable(instrMix(jobs)) << "\n";
    std::cout << opcodeFrequencyTable(opcodeFrequencies(jobs)) << "\n";
    std::cout << immediateUsageTable(immediateUsage(jobs)) << "\n";
    return 0;
}
