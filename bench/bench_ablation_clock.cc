/**
 * @file
 * Technology-sensitivity ablation: the paper's striking claim is that
 * RISC I wins even at HALF the VAX's clock (400 ns vs 200 ns). This
 * sweep varies the assumed RISC I cycle time and reports how much of
 * the suite it still wins — locating the break-even technology point.
 */

#include <iostream>

#include <algorithm>

#include "core/cli.hh"
#include "core/parallel.hh"
#include "core/run.hh"
#include "core/table.hh"
#include "support/logging.hh"

int
main(int argc, char **argv)
{
    using namespace risc1;
    using core::cell;

    const core::BenchCli cli = core::parseBenchCli(
        argc, argv,
        "Clock-rate ablation: vary the assumed RISC I cycle time and\n"
        "report how much of the suite it still wins (vax80 fixed at\n"
        "200 ns) — locating the break-even technology point.");

    // Cycle counts don't depend on the clock: measure once.
    struct Counts
    {
        std::string name;
        uint64_t riscCycles = 0;
        uint64_t vaxCycles = 0;
        bool ok = false;
    };
    const auto &suite = workloads::allWorkloads();
    const std::vector<Counts> counts = core::ParallelRunner(
        cli.resolvedJobs).map<Counts>(
        suite.size(), [&](size_t slot) {
        const auto &wl = suite[slot];
        core::RiscRun risc = core::runRisc(wl, wl.defaultScale);
        core::VaxRun vaxr = core::runVax(wl, wl.defaultScale);
        return Counts{wl.name, risc.stats.cycles, vaxr.stats.cycles,
                      risc.ok && vaxr.ok};
    });
    for (const Counts &c : counts) {
        if (!c.ok) {
            std::cerr << c.name << " failed\n";
            return 1;
        }
    }

    const double vax_ns = vax::VaxTiming{}.cycleTimeNs; // 200 ns
    core::Table table({"RISC cycle (ns)", "suite wins", "mean speedup",
                       "min speedup", "max speedup"});
    for (double risc_ns : {200.0, 300.0, 400.0, 600.0, 800.0, 1200.0,
                           1600.0}) {
        unsigned wins = 0;
        double sum = 0, mn = 1e30, mx = 0;
        for (const Counts &c : counts) {
            const double risc_us = static_cast<double>(c.riscCycles) *
                                   risc_ns / 1000.0;
            const double vax_us = static_cast<double>(c.vaxCycles) *
                                  vax_ns / 1000.0;
            const double speedup = vax_us / risc_us;
            if (speedup > 1.0)
                ++wins;
            sum += speedup;
            mn = std::min(mn, speedup);
            mx = std::max(mx, speedup);
        }
        table.row({cell(risc_ns, 0),
                   risc1::strprintf("%u/%zu", wins, counts.size()),
                   cell(sum / static_cast<double>(counts.size())),
                   cell(mn), cell(mx)});
    }
    std::cout << "Clock-rate ablation: how slow can RISC I's technology "
                 "be and still win? (vax80 fixed at 200 ns)\n"
              << table.str() << "\n";
    return 0;
}
