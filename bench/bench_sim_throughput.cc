/**
 * @file
 * Host-side google-benchmark harness: throughput of the two simulators
 * (simulated instructions per wall-clock second) over the whole suite.
 * This measures the reproduction's own speed, not the paper's machines;
 * the paper-facing tables come from the bench_* table printers.
 *
 * Series (see docs/PERFORMANCE.md for how to read them):
 *  - risc1/<wl>, vax80/<wl>: the predecoded fast path (the default).
 *  - risc1_nocache/<wl>, vax80_nocache/<wl>: predecode disabled — the
 *    pre-PR decode-every-step baseline; the ratio is the predecode win.
 *  - suite_risc1/jobs:N: wall time for one whole-suite sweep on N
 *    worker threads via ParallelRunner — the thread-scaling series.
 *  - assembler/<wl>: assembler front-end throughput.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "core/cli.hh"
#include "core/parallel.hh"
#include "core/run.hh"
#include "workloads/workload.hh"

namespace {

using namespace risc1;

void
riscThroughput(benchmark::State &state, const workloads::Workload *wl,
               bool predecode)
{
    assembler::Program prog = workloads::buildRisc(*wl, wl->defaultScale);
    sim::CpuOptions opts;
    opts.predecode = predecode;
    sim::Cpu cpu(opts);
    uint64_t insts = 0;
    for (auto _ : state) {
        cpu.load(prog);
        sim::ExecResult result = cpu.run();
        if (!result.halted())
            state.SkipWithError("run did not halt");
        insts += result.instructions;
    }
    state.counters["sim_insts/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}

void
vaxThroughput(benchmark::State &state, const workloads::Workload *wl,
              bool predecode)
{
    vax::VaxProgram prog = wl->buildVax(wl->defaultScale);
    vax::VaxCpuOptions opts;
    opts.predecode = predecode;
    vax::VaxCpu cpu(opts);
    uint64_t insts = 0;
    for (auto _ : state) {
        cpu.load(prog);
        sim::ExecResult result = cpu.run();
        if (!result.halted())
            state.SkipWithError("run did not halt");
        insts += result.instructions;
    }
    state.counters["sim_insts/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}

/** One whole-suite RISC sweep per iteration, fanned out over `jobs`. */
void
suiteThroughput(benchmark::State &state, unsigned jobs)
{
    const auto &suite = workloads::allWorkloads();
    std::vector<assembler::Program> progs;
    for (const auto &wl : suite)
        progs.push_back(workloads::buildRisc(wl, wl.defaultScale));

    const core::ParallelRunner runner(jobs);
    uint64_t insts = 0;
    for (auto _ : state) {
        const auto counts = runner.map<uint64_t>(
            progs.size(), [&](size_t slot) {
                sim::Cpu cpu;
                cpu.load(progs[slot]);
                sim::ExecResult result = cpu.run();
                return result.halted() ? result.instructions : 0;
            });
        for (uint64_t count : counts) {
            if (count == 0)
                state.SkipWithError("run did not halt");
            insts += count;
        }
    }
    state.counters["sim_insts/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}

void
assemblerThroughput(benchmark::State &state,
                    const workloads::Workload *wl)
{
    const std::string src = wl->riscSource(wl->defaultScale);
    uint64_t bytes = 0;
    for (auto _ : state) {
        assembler::AsmResult result = assembler::assemble(src);
        benchmark::DoNotOptimize(result);
        bytes += src.size();
    }
    state.counters["asm_bytes/s"] = benchmark::Counter(
        static_cast<double>(bytes), benchmark::Counter::kIsRate);
}

} // namespace

int
main(int argc, char **argv)
{
    const core::BenchCli cli = core::parseBenchCli(
        argc, argv,
        "Host-side simulator throughput (google-benchmark harness):\n"
        "predecode on vs off per workload, plus a whole-suite\n"
        "thread-scaling series. Remaining arguments are passed to\n"
        "google-benchmark (e.g. --benchmark_filter=...).",
        "[benchmark args]");

    for (const auto &wl : risc1::workloads::allWorkloads()) {
        benchmark::RegisterBenchmark(("risc1/" + wl.name).c_str(),
                                     riscThroughput, &wl, true);
        benchmark::RegisterBenchmark(
            ("risc1_nocache/" + wl.name).c_str(), riscThroughput, &wl,
            false);
        benchmark::RegisterBenchmark(("vax80/" + wl.name).c_str(),
                                     vaxThroughput, &wl, true);
        benchmark::RegisterBenchmark(
            ("vax80_nocache/" + wl.name).c_str(), vaxThroughput, &wl,
            false);
    }

    // Thread-scaling series: powers of two up to the resolved job
    // count (always at least jobs:1 and jobs:2 so the scaling slope is
    // visible even on small machines).
    std::vector<unsigned> series = {1, 2};
    const unsigned resolved = risc1::core::resolveJobs(cli.jobs);
    for (unsigned j = 4; j <= resolved; j *= 2)
        series.push_back(j);
    if (std::find(series.begin(), series.end(), resolved) ==
        series.end())
        series.push_back(resolved);
    for (unsigned jobs : series) {
        benchmark::RegisterBenchmark(
            ("suite_risc1/jobs:" + std::to_string(jobs)).c_str(),
            suiteThroughput, jobs);
    }

    const auto *fib = risc1::workloads::findWorkload("fibonacci");
    const auto *qsort = risc1::workloads::findWorkload("i_quicksort");
    benchmark::RegisterBenchmark("assembler/fibonacci",
                                 assemblerThroughput, fib);
    benchmark::RegisterBenchmark("assembler/i_quicksort",
                                 assemblerThroughput, qsort);

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
