/**
 * @file
 * Host-side google-benchmark harness: throughput of the two simulators
 * (simulated instructions per wall-clock second) over the whole suite.
 * This measures the reproduction's own speed, not the paper's machines;
 * the paper-facing tables come from the bench_* table printers.
 *
 * Series (see docs/PERFORMANCE.md for how to read them):
 *  - risc1/<wl>, vax80/<wl>: the full fast path (the default — for
 *    RISC I that is threaded dispatch with pair fusion).
 *  - risc1_jit/<wl>: superblocks compiled to host native code by the
 *    template JIT (src/jit), pair fusion off and block-to-block
 *    chaining pinned OFF — against risc1_superblock/ this isolates
 *    the native-emission win, and it stays comparable with snapshots
 *    taken before chaining existed. Only registered when
 *    jit::hostSupported(); on other hosts the series is absent rather
 *    than silently measuring the interpreted engine.
 *  - risc1_jit_chain/<wl>: the same engine with native block-to-block
 *    chaining on (the CpuOptions::jitChain default) — against
 *    risc1_jit/ this isolates the chaining + deferred-stats-commit
 *    win on its own. Same host gate as risc1_jit/.
 *  - risc1_superblock/<wl>: threaded dispatch + superblocks, pair
 *    fusion off — against risc1_threaded/ this isolates the
 *    whole-block dispatch win on its own.
 *  - risc1_threaded/<wl>: threaded dispatch alone (fusion and
 *    superblocks off) — the PR 3 engine rung.
 *  - risc1_predecode/<wl>: predecode only, threaded engine off — the
 *    previous generation's fast path; the risc1/ ratio against it is
 *    the threaded+fused+superblock win.
 *  - risc1_nocache/<wl>, vax80_nocache/<wl>: predecode disabled — the
 *    original decode-every-step baseline.
 *  - suite_risc1/jobs:N: wall time for one whole-suite sweep on N
 *    worker threads via ParallelRunner — the thread-scaling series.
 *  - suite_risc1_shared/jobs:N: the same sweep loading every run from
 *    one immutable shared ProgramImage per workload (copy-on-write
 *    pages + primed decode cache) instead of an eager per-run load —
 *    the shared-program batch-campaign model.
 *  - assembler/<wl>: assembler front-end throughput.
 *
 * --json additionally writes BENCH_sim_throughput.json mapping each
 * series entry to an object of its counters (always the
 * simulated-instructions-per-second rate; superblock-enabled series
 * add the mean dynamic block length and the blocks formed/demoted).
 * The leading "meta" entry records the host architecture and whether
 * the JIT series ran, so committed snapshots are comparable.
 *
 * --regress: after the run, compare the collected risc1_superblock/
 * rates against risc1_threaded/ per workload and exit non-zero when
 * the geometric-mean ratio is below 1.0 (superblock slower than
 * threaded) — the bench-regression ctest hook.
 *
 * --regress-jit: the same gate for risc1_jit/ against
 * risc1_threaded/ — the template JIT must beat plain threaded
 * dispatch even on the workloads where the interpreted superblock
 * engine loses its epilogue overhead (ackermann-style short-block
 * recursion).
 *
 * --regress-jit-chain: gate risc1_jit_chain/ against risc1_jit/ —
 * chaining is pure overhead-removal, so the chained engine must not
 * come out behind the unchained one (geomean over the filtered
 * workloads; the ctest hook runs ackermann + fibonacci, the
 * short-block exit-dominated acceptance pair).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/cli.hh"
#include "core/parallel.hh"
#include "core/run.hh"
#include "jit/arena.hh"
#include "sim/image.hh"
#include "workloads/workload.hh"

namespace {

using namespace risc1;

void
riscThroughput(benchmark::State &state, const workloads::Workload *wl,
               sim::CpuOptions opts)
{
    assembler::Program prog = workloads::buildRisc(*wl, wl->defaultScale);
    sim::Cpu cpu(opts);
    uint64_t insts = 0;
    for (auto _ : state) {
        cpu.load(prog);
        sim::ExecResult result = cpu.run();
        if (!result.halted())
            state.SkipWithError("run did not halt");
        insts += result.instructions;
    }
    state.counters["sim_insts/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
    if (opts.threaded && opts.superblock) {
        // Fusion-quality diagnostics from the last run (formation is
        // per-load, so any single run of the loop is representative).
        const sim::SimStats &st = cpu.stats();
        state.counters["sb_mean_block_len"] =
            benchmark::Counter(st.sbMeanBlockLen());
        state.counters["sb_blocks_formed"] =
            benchmark::Counter(static_cast<double>(st.sbBlocksFormed));
        state.counters["sb_blocks_demoted"] =
            benchmark::Counter(static_cast<double>(st.sbBlocksDemoted));
        state.counters["sb_chained"] =
            benchmark::Counter(static_cast<double>(st.sbChained));
        state.counters["sb_loop_iters"] =
            benchmark::Counter(static_cast<double>(st.sbLoopIters));
    }
}

void
vaxThroughput(benchmark::State &state, const workloads::Workload *wl,
              bool predecode)
{
    vax::VaxProgram prog = wl->buildVax(wl->defaultScale);
    vax::VaxCpuOptions opts;
    opts.predecode = predecode;
    vax::VaxCpu cpu(opts);
    uint64_t insts = 0;
    for (auto _ : state) {
        cpu.load(prog);
        sim::ExecResult result = cpu.run();
        if (!result.halted())
            state.SkipWithError("run did not halt");
        insts += result.instructions;
    }
    state.counters["sim_insts/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}

/**
 * One whole-suite RISC sweep per iteration, fanned out over `jobs`.
 * With `shared`, every run attaches one immutable per-workload
 * ProgramImage copy-on-write instead of re-rendering the program.
 */
void
suiteThroughput(benchmark::State &state, unsigned jobs, bool shared)
{
    const auto &suite = workloads::allWorkloads();
    std::vector<assembler::Program> progs;
    std::vector<sim::ProgramImage> images;
    for (const auto &wl : suite) {
        progs.push_back(workloads::buildRisc(wl, wl.defaultScale));
        if (shared)
            images.emplace_back(progs.back());
    }

    const core::ParallelRunner runner(jobs);
    uint64_t insts = 0;
    for (auto _ : state) {
        const auto counts = runner.map<uint64_t>(
            progs.size(), [&](size_t slot) {
                sim::Cpu cpu;
                if (shared)
                    cpu.load(images[slot]);
                else
                    cpu.load(progs[slot]);
                sim::ExecResult result = cpu.run();
                return result.halted() ? result.instructions : 0;
            });
        for (uint64_t count : counts) {
            if (count == 0)
                state.SkipWithError("run did not halt");
            insts += count;
        }
    }
    state.counters["sim_insts/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}

void
assemblerThroughput(benchmark::State &state,
                    const workloads::Workload *wl)
{
    const std::string src = wl->riscSource(wl->defaultScale);
    uint64_t bytes = 0;
    for (auto _ : state) {
        assembler::AsmResult result = assembler::assemble(src);
        benchmark::DoNotOptimize(result);
        bytes += src.size();
    }
    state.counters["asm_bytes/s"] = benchmark::Counter(
        static_cast<double>(bytes), benchmark::Counter::kIsRate);
}

/**
 * Console reporter that additionally collects each run's counters so
 * --json can dump a series → counters map and --regress can compare
 * series rates in-process.
 */
class JsonCollectingReporter : public benchmark::ConsoleReporter
{
  public:
    struct Entry
    {
        std::string name;
        std::vector<std::pair<std::string, double>> counters;
    };

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.error_occurred || run.run_type != Run::RT_Iteration)
                continue;
            if (run.counters.empty())
                continue;
            Entry entry;
            entry.name = run.benchmark_name();
            for (const auto &[name, counter] : run.counters)
                entry.counters.emplace_back(
                    name, static_cast<double>(counter));
            std::sort(entry.counters.begin(), entry.counters.end());
            entries_.push_back(std::move(entry));
        }
        ConsoleReporter::ReportRuns(runs);
    }

    /** Write {"series": {"counter": value, ...}, ...}. */
    bool
    writeJson(const char *path) const
    {
        std::FILE *out = std::fopen(path, "w");
        if (!out)
            return false;
        std::fprintf(out, "{\n");
        // Engine provenance: committed snapshots from different hosts
        // must be distinguishable (the risc1_jit/ series only exists
        // where the template JIT has host templates).
        std::fprintf(out,
                     "  \"meta\": {\"host_arch\": \"%s\", "
                     "\"jit_series\": %s},\n",
                     jit::hostArchName(),
                     jit::hostSupported() ? "true" : "false");
        for (size_t i = 0; i < entries_.size(); ++i) {
            const Entry &e = entries_[i];
            std::fprintf(out, "  \"%s\": {", e.name.c_str());
            for (size_t c = 0; c < e.counters.size(); ++c)
                std::fprintf(out, "\"%s\": %.1f%s",
                             e.counters[c].first.c_str(),
                             e.counters[c].second,
                             c + 1 < e.counters.size() ? ", " : "");
            std::fprintf(out, "}%s\n",
                         i + 1 < entries_.size() ? "," : "");
        }
        std::fprintf(out, "}\n");
        std::fclose(out);
        return true;
    }

    /** The collected sim_insts/s rate for a series entry, or 0. With
     *  --benchmark_repetitions each repetition contributes one entry;
     *  the best repetition is the noise-robust estimate (a background
     *  load spike only ever slows a run down, never speeds it up). */
    double
    rateOf(const std::string &series) const
    {
        double best = 0.0;
        for (const Entry &e : entries_) {
            if (e.name != series)
                continue;
            for (const auto &[name, value] : e.counters)
                if (name == "sim_insts/s" && value > best)
                    best = value;
        }
        return best;
    }

    const std::vector<Entry> &entries() const { return entries_; }

  private:
    std::vector<Entry> entries_;
};

/**
 * --regress / --regress-jit: compare the `prefix` series against
 * risc1_threaded/ per workload over the rates the reporter collected.
 * Returns the process exit status: 0 when the geometric-mean ratio is
 * at least 1.0, 1 when the tested engine came out slower (or no pair
 * was measured).
 */
int
checkRegression(const JsonCollectingReporter &reporter,
                const std::string &prefix,
                const std::string &baseline = "risc1_threaded/")
{
    double log_sum = 0.0;
    unsigned pairs = 0;
    std::vector<std::string> seen;
    for (const auto &entry : reporter.entries()) {
        if (entry.name.rfind(prefix, 0) != 0)
            continue;
        if (std::find(seen.begin(), seen.end(), entry.name) !=
            seen.end())
            continue; // one pair per workload across repetitions
        seen.push_back(entry.name);
        const std::string wl = entry.name.substr(prefix.size());
        const double sb = reporter.rateOf(entry.name);
        const double thr = reporter.rateOf(baseline + wl);
        if (sb <= 0.0 || thr <= 0.0)
            continue;
        const double ratio = sb / thr;
        std::fprintf(stderr, "regress: %-24s %.3fx %s\n",
                     wl.c_str(), ratio, baseline.c_str());
        log_sum += std::log(ratio);
        ++pairs;
    }
    if (pairs == 0) {
        std::fprintf(stderr,
                     "regress: no %s vs %s pairs "
                     "measured (check --benchmark_filter)\n",
                     prefix.c_str(), baseline.c_str());
        return 1;
    }
    const double geomean = std::exp(log_sum / pairs);
    std::fprintf(stderr, "regress: geomean %.3fx over %u workloads\n",
                 geomean, pairs);
    return geomean >= 1.0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const core::BenchCli cli = core::parseBenchCli(
        argc, argv,
        "Host-side simulator throughput (google-benchmark harness):\n"
        "predecode on vs off per workload, plus a whole-suite\n"
        "thread-scaling series. Remaining arguments are passed to\n"
        "google-benchmark (e.g. --benchmark_filter=...).",
        "[benchmark args]");

    // --regress / --regress-jit are ours, not google-benchmark's:
    // strip them before Initialize sees the argument list.
    bool regress = false;
    bool regress_jit = false;
    bool regress_jit_chain = false;
    for (int i = 1; i < argc;) {
        const std::string arg = argv[i];
        if (arg == "--regress" || arg == "--regress-jit" ||
            arg == "--regress-jit-chain") {
            (arg == "--regress"
                 ? regress
                 : arg == "--regress-jit" ? regress_jit
                                          : regress_jit_chain) = true;
            for (int j = i; j + 1 < argc; ++j)
                argv[j] = argv[j + 1];
            --argc;
        } else {
            ++i;
        }
    }
    if ((regress_jit || regress_jit_chain) &&
        !risc1::jit::hostSupported()) {
        // No templates for this host: nothing to gate. Report the
        // benchmark-style skip ctest recognises rather than failing.
        std::fprintf(stderr,
                     "regress-jit: no JIT templates for host arch %s; "
                     "skipping\n",
                     risc1::jit::hostArchName());
        return 77; // conventional SKIP_RETURN_CODE
    }

    using risc1::sim::CpuOptions;
    CpuOptions full;    // threaded + fused + superblocks (the default)
    CpuOptions sblock;  // superblocks without pair fusion
    sblock.fuse = false;
    CpuOptions jit_engine = sblock; // superblocks emitted as native code
    jit_engine.jit = true;
    jit_engine.jitChain = false; // the pre-chaining engine, pinned
    CpuOptions jit_chain = jit_engine; // + native block-to-block chaining
    jit_chain.jitChain = true;
    CpuOptions threaded_only;
    threaded_only.fuse = false;
    threaded_only.superblock = false;
    CpuOptions predecode_only;
    predecode_only.threaded = false;
    predecode_only.superblock = false;
    CpuOptions nocache;
    nocache.predecode = false;
    nocache.superblock = false;
    for (const auto &wl : risc1::workloads::allWorkloads()) {
        benchmark::RegisterBenchmark(("risc1/" + wl.name).c_str(),
                                     riscThroughput, &wl, full);
        if (risc1::jit::hostSupported()) {
            benchmark::RegisterBenchmark(
                ("risc1_jit/" + wl.name).c_str(), riscThroughput, &wl,
                jit_engine);
            benchmark::RegisterBenchmark(
                ("risc1_jit_chain/" + wl.name).c_str(), riscThroughput,
                &wl, jit_chain);
        }
        benchmark::RegisterBenchmark(
            ("risc1_superblock/" + wl.name).c_str(), riscThroughput,
            &wl, sblock);
        benchmark::RegisterBenchmark(
            ("risc1_threaded/" + wl.name).c_str(), riscThroughput, &wl,
            threaded_only);
        benchmark::RegisterBenchmark(
            ("risc1_predecode/" + wl.name).c_str(), riscThroughput, &wl,
            predecode_only);
        benchmark::RegisterBenchmark(
            ("risc1_nocache/" + wl.name).c_str(), riscThroughput, &wl,
            nocache);
        benchmark::RegisterBenchmark(("vax80/" + wl.name).c_str(),
                                     vaxThroughput, &wl, true);
        benchmark::RegisterBenchmark(
            ("vax80_nocache/" + wl.name).c_str(), vaxThroughput, &wl,
            false);
    }

    // Thread-scaling series: powers of two up to the resolved job
    // count (always at least jobs:1 and jobs:2 so the scaling slope is
    // visible even on small machines).
    std::vector<unsigned> series = {1, 2};
    const unsigned resolved = cli.resolvedJobs;
    for (unsigned j = 4; j <= resolved; j *= 2)
        series.push_back(j);
    if (std::find(series.begin(), series.end(), resolved) ==
        series.end())
        series.push_back(resolved);
    for (unsigned jobs : series) {
        benchmark::RegisterBenchmark(
            ("suite_risc1/jobs:" + std::to_string(jobs)).c_str(),
            suiteThroughput, jobs, false);
        benchmark::RegisterBenchmark(
            ("suite_risc1_shared/jobs:" + std::to_string(jobs)).c_str(),
            suiteThroughput, jobs, true);
    }

    const auto *fib = risc1::workloads::findWorkload("fibonacci");
    const auto *qsort = risc1::workloads::findWorkload("i_quicksort");
    benchmark::RegisterBenchmark("assembler/fibonacci",
                                 assemblerThroughput, fib);
    benchmark::RegisterBenchmark("assembler/i_quicksort",
                                 assemblerThroughput, qsort);

    benchmark::Initialize(&argc, argv);
    JsonCollectingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    if (cli.json &&
        !reporter.writeJson("BENCH_sim_throughput.json"))
        std::fprintf(stderr,
                     "warning: could not write "
                     "BENCH_sim_throughput.json\n");
    benchmark::Shutdown();
    if (regress) {
        const int status = checkRegression(reporter, "risc1_superblock/");
        if (status != 0)
            return status;
    }
    if (regress_jit) {
        const int status = checkRegression(reporter, "risc1_jit/");
        if (status != 0)
            return status;
    }
    if (regress_jit_chain)
        return checkRegression(reporter, "risc1_jit_chain/",
                               "risc1_jit/");
    return 0;
}
