/**
 * @file
 * Host-side google-benchmark harness: throughput of the two simulators
 * (simulated instructions per wall-clock second) over the whole suite.
 * This measures the reproduction's own speed, not the paper's machines;
 * the paper-facing tables come from the bench_* table printers.
 *
 * Series (see docs/PERFORMANCE.md for how to read them):
 *  - risc1/<wl>, vax80/<wl>: the full fast path (the default — for
 *    RISC I that is threaded dispatch with pair fusion).
 *  - risc1_threaded/<wl>: threaded dispatch, fusion off — isolates
 *    the superinstruction win inside the risc1/ number.
 *  - risc1_predecode/<wl>: predecode only, threaded engine off — the
 *    previous generation's fast path; the risc1/ ratio against it is
 *    the threaded+fused win.
 *  - risc1_nocache/<wl>, vax80_nocache/<wl>: predecode disabled — the
 *    original decode-every-step baseline.
 *  - suite_risc1/jobs:N: wall time for one whole-suite sweep on N
 *    worker threads via ParallelRunner — the thread-scaling series.
 *  - suite_risc1_shared/jobs:N: the same sweep loading every run from
 *    one immutable shared ProgramImage per workload (copy-on-write
 *    pages + primed decode cache) instead of an eager per-run load —
 *    the shared-program batch-campaign model.
 *  - assembler/<wl>: assembler front-end throughput.
 *
 * --json additionally writes BENCH_sim_throughput.json mapping each
 * series entry to its simulated-instructions-per-second rate.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/cli.hh"
#include "core/parallel.hh"
#include "core/run.hh"
#include "sim/image.hh"
#include "workloads/workload.hh"

namespace {

using namespace risc1;

void
riscThroughput(benchmark::State &state, const workloads::Workload *wl,
               sim::CpuOptions opts)
{
    assembler::Program prog = workloads::buildRisc(*wl, wl->defaultScale);
    sim::Cpu cpu(opts);
    uint64_t insts = 0;
    for (auto _ : state) {
        cpu.load(prog);
        sim::ExecResult result = cpu.run();
        if (!result.halted())
            state.SkipWithError("run did not halt");
        insts += result.instructions;
    }
    state.counters["sim_insts/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}

void
vaxThroughput(benchmark::State &state, const workloads::Workload *wl,
              bool predecode)
{
    vax::VaxProgram prog = wl->buildVax(wl->defaultScale);
    vax::VaxCpuOptions opts;
    opts.predecode = predecode;
    vax::VaxCpu cpu(opts);
    uint64_t insts = 0;
    for (auto _ : state) {
        cpu.load(prog);
        sim::ExecResult result = cpu.run();
        if (!result.halted())
            state.SkipWithError("run did not halt");
        insts += result.instructions;
    }
    state.counters["sim_insts/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}

/**
 * One whole-suite RISC sweep per iteration, fanned out over `jobs`.
 * With `shared`, every run attaches one immutable per-workload
 * ProgramImage copy-on-write instead of re-rendering the program.
 */
void
suiteThroughput(benchmark::State &state, unsigned jobs, bool shared)
{
    const auto &suite = workloads::allWorkloads();
    std::vector<assembler::Program> progs;
    std::vector<sim::ProgramImage> images;
    for (const auto &wl : suite) {
        progs.push_back(workloads::buildRisc(wl, wl.defaultScale));
        if (shared)
            images.emplace_back(progs.back());
    }

    const core::ParallelRunner runner(jobs);
    uint64_t insts = 0;
    for (auto _ : state) {
        const auto counts = runner.map<uint64_t>(
            progs.size(), [&](size_t slot) {
                sim::Cpu cpu;
                if (shared)
                    cpu.load(images[slot]);
                else
                    cpu.load(progs[slot]);
                sim::ExecResult result = cpu.run();
                return result.halted() ? result.instructions : 0;
            });
        for (uint64_t count : counts) {
            if (count == 0)
                state.SkipWithError("run did not halt");
            insts += count;
        }
    }
    state.counters["sim_insts/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}

void
assemblerThroughput(benchmark::State &state,
                    const workloads::Workload *wl)
{
    const std::string src = wl->riscSource(wl->defaultScale);
    uint64_t bytes = 0;
    for (auto _ : state) {
        assembler::AsmResult result = assembler::assemble(src);
        benchmark::DoNotOptimize(result);
        bytes += src.size();
    }
    state.counters["asm_bytes/s"] = benchmark::Counter(
        static_cast<double>(bytes), benchmark::Counter::kIsRate);
}

/**
 * Console reporter that additionally collects each run's
 * sim_insts/s counter so --json can dump a series → rate map.
 */
class JsonCollectingReporter : public benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.error_occurred || run.run_type != Run::RT_Iteration)
                continue;
            auto it = run.counters.find("sim_insts/s");
            if (it != run.counters.end())
                rates_.emplace_back(run.benchmark_name(),
                                    static_cast<double>(it->second));
        }
        ConsoleReporter::ReportRuns(runs);
    }

    /** Write the collected rates as {"series": rate, ...}. */
    bool
    writeJson(const char *path) const
    {
        std::FILE *out = std::fopen(path, "w");
        if (!out)
            return false;
        std::fprintf(out, "{\n");
        for (size_t i = 0; i < rates_.size(); ++i)
            std::fprintf(out, "  \"%s\": %.1f%s\n",
                         rates_[i].first.c_str(), rates_[i].second,
                         i + 1 < rates_.size() ? "," : "");
        std::fprintf(out, "}\n");
        std::fclose(out);
        return true;
    }

  private:
    std::vector<std::pair<std::string, double>> rates_;
};

} // namespace

int
main(int argc, char **argv)
{
    const core::BenchCli cli = core::parseBenchCli(
        argc, argv,
        "Host-side simulator throughput (google-benchmark harness):\n"
        "predecode on vs off per workload, plus a whole-suite\n"
        "thread-scaling series. Remaining arguments are passed to\n"
        "google-benchmark (e.g. --benchmark_filter=...).",
        "[benchmark args]");

    using risc1::sim::CpuOptions;
    CpuOptions full;    // threaded + fused (the default)
    CpuOptions threaded_only;
    threaded_only.fuse = false;
    CpuOptions predecode_only;
    predecode_only.threaded = false;
    CpuOptions nocache;
    nocache.predecode = false;
    for (const auto &wl : risc1::workloads::allWorkloads()) {
        benchmark::RegisterBenchmark(("risc1/" + wl.name).c_str(),
                                     riscThroughput, &wl, full);
        benchmark::RegisterBenchmark(
            ("risc1_threaded/" + wl.name).c_str(), riscThroughput, &wl,
            threaded_only);
        benchmark::RegisterBenchmark(
            ("risc1_predecode/" + wl.name).c_str(), riscThroughput, &wl,
            predecode_only);
        benchmark::RegisterBenchmark(
            ("risc1_nocache/" + wl.name).c_str(), riscThroughput, &wl,
            nocache);
        benchmark::RegisterBenchmark(("vax80/" + wl.name).c_str(),
                                     vaxThroughput, &wl, true);
        benchmark::RegisterBenchmark(
            ("vax80_nocache/" + wl.name).c_str(), vaxThroughput, &wl,
            false);
    }

    // Thread-scaling series: powers of two up to the resolved job
    // count (always at least jobs:1 and jobs:2 so the scaling slope is
    // visible even on small machines).
    std::vector<unsigned> series = {1, 2};
    const unsigned resolved = cli.resolvedJobs;
    for (unsigned j = 4; j <= resolved; j *= 2)
        series.push_back(j);
    if (std::find(series.begin(), series.end(), resolved) ==
        series.end())
        series.push_back(resolved);
    for (unsigned jobs : series) {
        benchmark::RegisterBenchmark(
            ("suite_risc1/jobs:" + std::to_string(jobs)).c_str(),
            suiteThroughput, jobs, false);
        benchmark::RegisterBenchmark(
            ("suite_risc1_shared/jobs:" + std::to_string(jobs)).c_str(),
            suiteThroughput, jobs, true);
    }

    const auto *fib = risc1::workloads::findWorkload("fibonacci");
    const auto *qsort = risc1::workloads::findWorkload("i_quicksort");
    benchmark::RegisterBenchmark("assembler/fibonacci",
                                 assemblerThroughput, fib);
    benchmark::RegisterBenchmark("assembler/i_quicksort",
                                 assemblerThroughput, qsort);

    benchmark::Initialize(&argc, argv);
    JsonCollectingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    if (cli.json &&
        !reporter.writeJson("BENCH_sim_throughput.json"))
        std::fprintf(stderr,
                     "warning: could not write "
                     "BENCH_sim_throughput.json\n");
    benchmark::Shutdown();
    return 0;
}
