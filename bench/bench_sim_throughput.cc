/**
 * @file
 * Host-side google-benchmark harness: throughput of the two simulators
 * (simulated instructions per wall-clock second) over the whole suite.
 * This measures the reproduction's own speed, not the paper's machines;
 * the paper-facing tables come from the bench_* table printers.
 */

#include <benchmark/benchmark.h>

#include "core/run.hh"
#include "workloads/workload.hh"

namespace {

using namespace risc1;

void
riscThroughput(benchmark::State &state, const workloads::Workload *wl)
{
    assembler::Program prog = workloads::buildRisc(*wl, wl->defaultScale);
    sim::Cpu cpu;
    uint64_t insts = 0;
    for (auto _ : state) {
        cpu.load(prog);
        sim::ExecResult result = cpu.run();
        if (!result.halted())
            state.SkipWithError("run did not halt");
        insts += result.instructions;
    }
    state.counters["sim_insts/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}

void
vaxThroughput(benchmark::State &state, const workloads::Workload *wl)
{
    vax::VaxProgram prog = wl->buildVax(wl->defaultScale);
    vax::VaxCpu cpu;
    uint64_t insts = 0;
    for (auto _ : state) {
        cpu.load(prog);
        sim::ExecResult result = cpu.run();
        if (!result.halted())
            state.SkipWithError("run did not halt");
        insts += result.instructions;
    }
    state.counters["sim_insts/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}

void
assemblerThroughput(benchmark::State &state,
                    const workloads::Workload *wl)
{
    const std::string src = wl->riscSource(wl->defaultScale);
    uint64_t bytes = 0;
    for (auto _ : state) {
        assembler::AsmResult result = assembler::assemble(src);
        benchmark::DoNotOptimize(result);
        bytes += src.size();
    }
    state.counters["asm_bytes/s"] = benchmark::Counter(
        static_cast<double>(bytes), benchmark::Counter::kIsRate);
}

} // namespace

int
main(int argc, char **argv)
{
    for (const auto &wl : risc1::workloads::allWorkloads()) {
        benchmark::RegisterBenchmark(("risc1/" + wl.name).c_str(),
                                     riscThroughput, &wl);
        benchmark::RegisterBenchmark(("vax80/" + wl.name).c_str(),
                                     vaxThroughput, &wl);
    }
    const auto *fib = risc1::workloads::findWorkload("fibonacci");
    const auto *qsort = risc1::workloads::findWorkload("i_quicksort");
    benchmark::RegisterBenchmark("assembler/fibonacci",
                                 assemblerThroughput, fib);
    benchmark::RegisterBenchmark("assembler/i_quicksort",
                                 assemblerThroughput, qsort);

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
