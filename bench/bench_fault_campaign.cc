/**
 * @file
 * Experiment R1: the seeded fault-injection campaign over the whole
 * suite. Usage: bench_fault_campaign [injections] [seed] — defaults
 * 100 and 1981; the table is bit-for-bit reproducible for a fixed
 * pair.
 */

#include <cstdlib>
#include <iostream>

#include "core/experiments.hh"

int
main(int argc, char **argv)
{
    unsigned injections = 100;
    uint64_t seed = 1981;
    if (argc > 1)
        injections = static_cast<unsigned>(std::strtoul(argv[1], nullptr, 0));
    if (argc > 2)
        seed = std::strtoull(argv[2], nullptr, 0);

    auto rows = risc1::core::faultCampaign(injections, seed);
    std::cout << risc1::core::faultCampaignTable(rows) << "\n";
    return 0;
}
