/**
 * @file
 * Experiment R1: the seeded fault-injection campaign over the whole
 * suite. Usage: bench_fault_campaign [injections] [seed] [--tally]
 * [--recover] [--checkpoint-interval K] [--seed-range A:B]
 * [--shard-out FILE] [--avf] [--engine NAME] [--jit-no-chain] —
 * defaults 100 and 1981; the table is
 * bit-for-bit reproducible for a fixed pair. --tally streams outcomes
 * into fixed-size tallies (peak memory independent of the injection
 * count) instead of materializing the flat outcome vector; the table
 * is identical either way. --recover enables checkpoint/rollback
 * recovery (snapshot every K instructions, K from
 * --checkpoint-interval, default 5000): detected trap/hang runs are
 * rolled back and re-executed, and the table gains recovered/
 * unrecovered columns. --avf appends the R3 per-fault-target AVF
 * table. --seed-range A:B runs only slots [A, B) of the flat workload
 * x injection grid — this is the campaign fleet's worker entry point
 * (campaign_fleet spawns one such process per shard) and the handiest
 * way to bisect a single bad seed; with --shard-out FILE the rows are
 * written as a shard-cache record instead of printed. See
 * docs/ROBUSTNESS.md.
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include <unistd.h>

#include "core/cli.hh"
#include "core/experiments.hh"
#include "core/fleet.hh"
#include "core/parallel.hh"
#include "debug/replay.hh"
#include "jit/arena.hh"

int
main(int argc, char **argv)
{
    const risc1::core::BenchCli cli = risc1::core::parseBenchCli(
        argc, argv,
        "R1: the seeded fault-injection campaign over the whole suite.\n"
        "Defaults: 100 injections, seed 1981; the table is bit-for-bit\n"
        "reproducible for a fixed (injections, seed) pair, at any job\n"
        "count. --tally streams outcomes into fixed-size per-workload\n"
        "tallies (memory independent of the injection count) instead\n"
        "of a flat outcome vector; same table either way. --recover\n"
        "checkpoints every K instructions (--checkpoint-interval K,\n"
        "default 5000) and re-executes detected trap/hang runs from\n"
        "the last checkpoint, splitting them recovered/unrecovered.\n"
        "--avf appends the R3 per-fault-target AVF table (with\n"
        "recovery-weighted columns under --recover). --seed-range A:B\n"
        "runs only slots [A,B) of the flat workload x injection grid\n"
        "(the fleet worker entry point; summing any partition of the\n"
        "grid reproduces the full campaign); --shard-out FILE writes\n"
        "those rows as a durable shard-cache record instead of a\n"
        "table. --repro SLOT re-executes one grid slot and writes a\n"
        "replay file (--repro-out FILE, default repro_SLOT.r1replay)\n"
        "that `risc1_gdb --replay FILE` opens as an interactive\n"
        "time-travel session parked at the detection point (see\n"
        "docs/DEBUGGING.md). --engine NAME (ref, threaded,\n"
        "superblock, jit) runs every guest on that engine — the\n"
        "tables are engine-invariant; jit needs an x86-64 host and\n"
        "is rejected elsewhere with an explicit error.\n"
        "--jit-no-chain disables native block-to-block chaining under\n"
        "--engine jit (inert otherwise): the unchained half of the\n"
        "chaining A/B, same tables either way.",
        "[injections] [seed] [--tally] [--recover] "
        "[--checkpoint-interval K] [--seed-range A:B] "
        "[--shard-out FILE] [--avf] [--repro SLOT] [--repro-out FILE] "
        "[--engine NAME] [--jit-no-chain]");

    bool streaming = false;
    bool avf = false;
    risc1::core::RecoveryOptions recovery;
    bool have_range = false;
    uint64_t range_first = 0, range_last = 0;
    std::string shard_out;
    bool have_repro = false;
    uint64_t repro_slot = 0;
    std::string repro_out;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--tally") == 0) {
            streaming = true;
        } else if (std::strcmp(argv[i], "--recover") == 0) {
            recovery.enabled = true;
        } else if (std::strcmp(argv[i], "--checkpoint-interval") == 0 &&
                   i + 1 < argc) {
            recovery.checkpointInterval =
                std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--avf") == 0) {
            avf = true;
        } else if (std::strcmp(argv[i], "--seed-range") == 0 &&
                   i + 1 < argc) {
            const auto range = risc1::core::parseSeedRange(argv[++i]);
            if (!range) {
                std::cerr << argv[0] << ": bad --seed-range '"
                          << argv[i] << "' (want A:B, A <= B)\n";
                return 2;
            }
            have_range = true;
            range_first = range->first;
            range_last = range->second;
        } else if (std::strcmp(argv[i], "--shard-out") == 0 &&
                   i + 1 < argc) {
            shard_out = argv[++i];
        } else if (std::strcmp(argv[i], "--repro") == 0 &&
                   i + 1 < argc) {
            have_repro = true;
            repro_slot = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--repro-out") == 0 &&
                   i + 1 < argc) {
            repro_out = argv[++i];
        } else if (std::strcmp(argv[i], "--engine") == 0 &&
                   i + 1 < argc) {
            const std::string engine = argv[++i];
            if (engine == "jit" && !risc1::jit::hostSupported()) {
                std::cerr << argv[0]
                          << ": --engine jit has no templates for "
                             "host arch "
                          << risc1::jit::hostArchName()
                          << " (x86-64 only); use ref, threaded or "
                             "superblock\n";
                return 77; // ctest SKIP_RETURN_CODE, not a failure
            }
            if (!risc1::core::setCampaignEngine(engine)) {
                std::cerr << argv[0] << ": unknown --engine '"
                          << engine
                          << "' (ref, threaded, superblock, jit)\n";
                return 2;
            }
        } else if (std::strcmp(argv[i], "--jit-no-chain") == 0) {
            risc1::core::setCampaignJitChain(false);
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;

    unsigned injections = 100;
    uint64_t seed = 1981;
    if (argc > 1)
        injections = static_cast<unsigned>(std::strtoul(argv[1], nullptr, 0));
    if (argc > 2)
        seed = std::strtoull(argv[2], nullptr, 0);

    if (!shard_out.empty() && !have_range) {
        std::cerr << argv[0] << ": --shard-out needs --seed-range\n";
        return 2;
    }

    if (have_repro) {
        // Reproduce one grid slot as an interactive replay file; the
        // campaign itself is not run.
        const risc1::core::FaultRepro repro =
            risc1::core::faultCampaignRepro(repro_slot, injections,
                                            seed);
        risc1::debug::ReplayFile replay;
        replay.options = repro.options;
        replay.snapshot = repro.snapshot;
        replay.snapshotInstructions = repro.snapshotInstructions;
        replay.targetInstructions = repro.targetInstructions;
        replay.targetPc = repro.targetPc;
        replay.note = repro.note;
        if (repro_out.empty())
            repro_out = "repro_" + std::to_string(repro_slot) +
                        ".r1replay";
        risc1::debug::writeReplayFile(repro_out, replay);
        std::cout << repro.note << "\n"
                  << "replay file: " << repro_out << "\n"
                  << "open with: risc1_gdb --replay " << repro_out
                  << "\n";
        return 0;
    }

    // Chaos hook for the fleet's re-queue ctests (see core/fleet.cc):
    // only honoured in worker (--seed-range) mode, so a stray
    // environment variable can never perturb a normal campaign.
    if (have_range) {
        const char *chaos = std::getenv("RISC1_SHARD_CHAOS");
        if (chaos && std::strcmp(chaos, "crash") == 0)
            std::_Exit(42);
        if (chaos && std::strcmp(chaos, "hang") == 0)
            ::sleep(600);
    }

    auto rows =
        have_range
            ? risc1::core::faultCampaignRange(injections, seed,
                                              range_first, range_last,
                                              cli.resolvedJobs,
                                              streaming, recovery)
            : risc1::core::faultCampaign(injections, seed,
                                         cli.resolvedJobs, streaming,
                                         recovery);

    if (!shard_out.empty()) {
        const risc1::core::ShardParams params = risc1::core::shardParams(
            injections, seed, range_first, range_last, recovery);
        std::vector<uint8_t> record =
            risc1::core::serializeShardRecord(params, rows);
        // Chaos: a worker that exits cleanly but hands back a
        // bit-flipped record. The coordinator must catch it in cache
        // validation (Corrupt), reject it, and re-queue the shard —
        // never merge it.
        const char *chaos = std::getenv("RISC1_SHARD_CHAOS");
        if (have_range && chaos && std::strcmp(chaos, "corrupt") == 0)
            record[record.size() / 2] ^= 0x01;
        risc1::core::writeShardFile(shard_out, record);
        return 0;
    }

    std::cout << risc1::core::faultCampaignTable(rows, recovery.enabled)
              << "\n";
    if (avf)
        std::cout << risc1::core::avfTable(
                         risc1::core::avfReport(rows),
                         recovery.enabled)
                  << "\n";
    return 0;
}
