/**
 * @file
 * Experiment R1: the seeded fault-injection campaign over the whole
 * suite. Usage: bench_fault_campaign [injections] [seed] — defaults
 * 100 and 1981; the table is bit-for-bit reproducible for a fixed
 * pair.
 */

#include <cstdlib>
#include <iostream>

#include "core/cli.hh"
#include "core/experiments.hh"
#include "core/parallel.hh"

int
main(int argc, char **argv)
{
    const risc1::core::BenchCli cli = risc1::core::parseBenchCli(
        argc, argv,
        "R1: the seeded fault-injection campaign over the whole suite.\n"
        "Defaults: 100 injections, seed 1981; the table is bit-for-bit\n"
        "reproducible for a fixed (injections, seed) pair, at any job\n"
        "count.",
        "[injections] [seed]");

    unsigned injections = 100;
    uint64_t seed = 1981;
    if (argc > 1)
        injections = static_cast<unsigned>(std::strtoul(argv[1], nullptr, 0));
    if (argc > 2)
        seed = std::strtoull(argv[2], nullptr, 0);

    auto rows = risc1::core::faultCampaign(
        injections, seed, cli.resolvedJobs);
    std::cout << risc1::core::faultCampaignTable(rows) << "\n";
    return 0;
}
