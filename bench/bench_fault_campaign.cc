/**
 * @file
 * Experiment R1: the seeded fault-injection campaign over the whole
 * suite. Usage: bench_fault_campaign [injections] [seed] [--tally] —
 * defaults 100 and 1981; the table is bit-for-bit reproducible for a
 * fixed pair. --tally streams outcomes into fixed-size tallies (peak
 * memory independent of the injection count) instead of materializing
 * the flat outcome vector; the table is identical either way.
 */

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "core/cli.hh"
#include "core/experiments.hh"
#include "core/parallel.hh"

int
main(int argc, char **argv)
{
    const risc1::core::BenchCli cli = risc1::core::parseBenchCli(
        argc, argv,
        "R1: the seeded fault-injection campaign over the whole suite.\n"
        "Defaults: 100 injections, seed 1981; the table is bit-for-bit\n"
        "reproducible for a fixed (injections, seed) pair, at any job\n"
        "count. --tally streams outcomes into fixed-size per-workload\n"
        "tallies (memory independent of the injection count) instead\n"
        "of a flat outcome vector; same table either way.",
        "[injections] [seed] [--tally]");

    bool streaming = false;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--tally") == 0)
            streaming = true;
        else
            argv[out++] = argv[i];
    }
    argc = out;

    unsigned injections = 100;
    uint64_t seed = 1981;
    if (argc > 1)
        injections = static_cast<unsigned>(std::strtoul(argv[1], nullptr, 0));
    if (argc > 2)
        seed = std::strtoull(argv[2], nullptr, 0);

    auto rows = risc1::core::faultCampaign(
        injections, seed, cli.resolvedJobs, streaming);
    std::cout << risc1::core::faultCampaignTable(rows) << "\n";
    return 0;
}
