/**
 * @file
 * Experiment R1: the seeded fault-injection campaign over the whole
 * suite. Usage: bench_fault_campaign [injections] [seed] [--tally]
 * [--recover] [--checkpoint-interval K] — defaults 100 and 1981; the
 * table is bit-for-bit reproducible for a fixed pair. --tally streams
 * outcomes into fixed-size tallies (peak memory independent of the
 * injection count) instead of materializing the flat outcome vector;
 * the table is identical either way. --recover enables checkpoint/
 * rollback recovery (snapshot every K instructions, K from
 * --checkpoint-interval, default 5000): detected trap/hang runs are
 * rolled back and re-executed, and the table gains recovered/
 * unrecovered columns. See docs/ROBUSTNESS.md.
 */

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "core/cli.hh"
#include "core/experiments.hh"
#include "core/parallel.hh"

int
main(int argc, char **argv)
{
    const risc1::core::BenchCli cli = risc1::core::parseBenchCli(
        argc, argv,
        "R1: the seeded fault-injection campaign over the whole suite.\n"
        "Defaults: 100 injections, seed 1981; the table is bit-for-bit\n"
        "reproducible for a fixed (injections, seed) pair, at any job\n"
        "count. --tally streams outcomes into fixed-size per-workload\n"
        "tallies (memory independent of the injection count) instead\n"
        "of a flat outcome vector; same table either way. --recover\n"
        "checkpoints every K instructions (--checkpoint-interval K,\n"
        "default 5000) and re-executes detected trap/hang runs from\n"
        "the last checkpoint, splitting them recovered/unrecovered.",
        "[injections] [seed] [--tally] [--recover] "
        "[--checkpoint-interval K]");

    bool streaming = false;
    risc1::core::RecoveryOptions recovery;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--tally") == 0) {
            streaming = true;
        } else if (std::strcmp(argv[i], "--recover") == 0) {
            recovery.enabled = true;
        } else if (std::strcmp(argv[i], "--checkpoint-interval") == 0 &&
                   i + 1 < argc) {
            recovery.checkpointInterval =
                std::strtoull(argv[++i], nullptr, 0);
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;

    unsigned injections = 100;
    uint64_t seed = 1981;
    if (argc > 1)
        injections = static_cast<unsigned>(std::strtoul(argv[1], nullptr, 0));
    if (argc > 2)
        seed = std::strtoull(argv[2], nullptr, 0);

    auto rows = risc1::core::faultCampaign(
        injections, seed, cli.resolvedJobs, streaming, recovery);
    std::cout << risc1::core::faultCampaignTable(rows, recovery.enabled)
              << "\n";
    return 0;
}
