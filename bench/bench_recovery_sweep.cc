/**
 * @file
 * Experiment R2: checkpoint-interval sweep — recovery rate vs
 * checkpoint/replay overhead. Usage: bench_recovery_sweep [injections]
 * [seed] [intervals...] — defaults 40 injections, seed 1981, intervals
 * 250/1000/4000/16000. For each interval the full recovery campaign
 * runs (streaming mode) and the suite-wide detected/recovered counts,
 * checkpoint count and replayed-instruction cost are aggregated into
 * one row. Deterministic for a fixed (injections, seed) at any job
 * count. See docs/ROBUSTNESS.md.
 */

#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/cli.hh"
#include "core/experiments.hh"
#include "core/parallel.hh"

int
main(int argc, char **argv)
{
    const risc1::core::BenchCli cli = risc1::core::parseBenchCli(
        argc, argv,
        "R2: sweep the recovery campaign's checkpoint interval and\n"
        "report recovery rate vs checkpoint/replay overhead. Defaults:\n"
        "40 injections, seed 1981, intervals 250 1000 4000 16000;\n"
        "deterministic for a fixed (injections, seed) at any job count.",
        "[injections] [seed] [intervals...]");

    unsigned injections = 40;
    uint64_t seed = 1981;
    std::vector<uint64_t> intervals = {250, 1000, 4000, 16000};
    if (argc > 1)
        injections = static_cast<unsigned>(std::strtoul(argv[1], nullptr, 0));
    if (argc > 2)
        seed = std::strtoull(argv[2], nullptr, 0);
    if (argc > 3) {
        intervals.clear();
        for (int i = 3; i < argc; ++i)
            intervals.push_back(std::strtoull(argv[i], nullptr, 0));
    }

    auto rows = risc1::core::recoverySweep(intervals, injections, seed,
                                           cli.resolvedJobs);
    std::cout << risc1::core::recoverySweepTable(rows) << "\n";
    return 0;
}
