/**
 * @file
 * Experiment E4: static code size of every suite program on both
 * machines (the paper's size-ratio table).
 */

#include <iostream>

#include "core/experiments.hh"

int
main()
{
    auto rows = risc1::core::codeSize();
    std::cout << risc1::core::codeSizeTable(rows) << "\n";
    return 0;
}
