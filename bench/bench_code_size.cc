/**
 * @file
 * Experiment E4: static code size of every suite program on both
 * machines (the paper's size-ratio table).
 */

#include <iostream>

#include "core/cli.hh"
#include "core/experiments.hh"
#include "core/parallel.hh"

int
main(int argc, char **argv)
{
    using namespace risc1::core;
    const BenchCli cli = parseBenchCli(
        argc, argv,
        "E4: static code size of every suite program on both machines\n"
        "(the paper's size-ratio table).");
    auto rows = codeSize(cli.resolvedJobs);
    std::cout << codeSizeTable(rows) << "\n";
    return 0;
}
