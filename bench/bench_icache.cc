/**
 * @file
 * Instruction-cache sweep (extension study): miss rate and added stall
 * cycles across cache sizes, for the whole suite — the classic
 * cache-size series the Berkeley follow-on work explored.
 */

#include <iostream>
#include <string>
#include <vector>

#include "core/cli.hh"
#include "core/parallel.hh"
#include "core/table.hh"
#include "sim/fault.hh"
#include "sim/cpu.hh"
#include "sim/icache.hh"
#include "workloads/workload.hh"

namespace {

using namespace risc1;

/** Replay one workload's fetch stream through a cache. */
sim::ICacheStats
replay(const assembler::Program &prog, sim::ICacheConfig config,
       uint64_t &stall_cycles)
{
    sim::Cpu cpu;
    cpu.load(prog);
    sim::ICacheModel cache(config);
    stall_cycles = 0;
    while (!cpu.halted() &&
           cpu.stats().instructions < cpu.options().maxInstructions) {
        stall_cycles += cache.access(cpu.pc());
        cpu.step();
    }
    return cache.stats();
}

} // namespace

int
main(int argc, char **argv)
{
    using core::cell;

    const core::BenchCli cli = core::parseBenchCli(
        argc, argv,
        "Extension study: direct-mapped I-cache miss rate and added\n"
        "stall cycles across cache sizes, for the whole suite.");

    const std::vector<uint32_t> sizes = {128, 256, 512, 1024, 2048,
                                         4096};

    struct RowResult
    {
        std::vector<std::string> cells;
        std::string error;
    };
    const auto &suite = workloads::allWorkloads();
    const auto results = core::ParallelRunner(
        cli.resolvedJobs).map<RowResult>(
        suite.size(), [&](size_t slot) {
        const auto &wl = suite[slot];
        RowResult out;
        assembler::Program prog =
            workloads::buildRisc(wl, wl.defaultScale);
        std::vector<std::string> row{wl.name};
        double stall_pct_512 = 0;
        for (uint32_t size : sizes) {
            sim::ICacheConfig config;
            config.sizeBytes = size;
            uint64_t stalls = 0;
            sim::ICacheStats stats;
            try {
                stats = replay(prog, config, stalls);
            } catch (const sim::SimFault &fault) {
                out.error = wl.name + ": " + fault.message;
                return out;
            }
            row.push_back(cell(100.0 * stats.missRate()));
            if (size == 512) {
                // Added stalls relative to the base cycle count.
                sim::Cpu base;
                base.load(prog);
                auto result = base.run();
                stall_pct_512 =
                    100.0 * static_cast<double>(stalls) /
                    static_cast<double>(result.cycles + stalls);
            }
        }
        row.push_back(cell(stall_pct_512));
        out.cells = std::move(row);
        return out;
    });

    core::Table table({"program", "128B miss%", "256B miss%",
                       "512B miss%", "1KB miss%", "2KB miss%",
                       "4KB miss%", "stall% @512B"});
    for (const RowResult &result : results) {
        if (!result.error.empty()) {
            std::cerr << result.error << "\n";
            return 1;
        }
        table.row(result.cells);
    }
    std::cout << "Extension study: direct-mapped I-cache miss rates vs "
                 "size (16B lines, 4-cycle refill)\n"
              << table.str() << "\n";
    return 0;
}
