/**
 * @file
 * Compiled-code comparison: the same tinyc sources compiled by our
 * compiler for both machines — removing the "hand-coded assembly"
 * caveat from the main suite (EXPERIMENTS.md delta #2). Also reports
 * the compiler-vs-hand-code quality gap on RISC I for fib.
 */

#include <iostream>
#include <string>
#include <vector>

#include "asm/assembler.hh"
#include "cc/compiler.hh"
#include "core/cli.hh"
#include "core/parallel.hh"
#include "core/table.hh"
#include "sim/cpu.hh"
#include "vax/cpu.hh"
#include "workloads/workload.hh"

namespace {

using namespace risc1;

struct Compiled
{
    const char *name;
    const char *source;
    uint32_t expected;
};

const Compiled programs[] = {
    {"fib20", R"(
fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
main() { return fib(20); }
)",
     6765},
    {"sieve2000", R"(
main() {
    var n = 2000; var i = 2; var count = 0;
    while (i < n) {
        if (mem[i] == 0) {
            count = count + 1;
            var j = i + i;
            while (j < n) { mem[j] = 1; j = j + i; }
        }
        i = i + 1;
    }
    return count;
}
)",
     303},
    {"gcdsum", R"(
gcd(a, b) { if (b == 0) { return a; } return gcd(b, a % b); }
main() {
    var x = 123456789; var sum = 0; var i = 0;
    while (i < 40) {
        x = x ^ (x << 13); x = x ^ (x >> 17); x = x ^ (x << 5);
        var a = x;
        x = x ^ (x << 13); x = x ^ (x >> 17); x = x ^ (x << 5);
        var b = x | 1;
        sum = sum + gcd(a, b);
        i = i + 1;
    }
    return sum;
}
)",
     0 /* checked for cross-machine agreement only */},
    {"hanoi16", R"(
hanoi(n) {
    if (n == 0) { return 0; }
    return hanoi(n - 1) + 1 + hanoi(n - 1);
}
main() { return hanoi(16); }
)",
     65535},
};

} // namespace

int
main(int argc, char **argv)
{
    using core::cell;

    const core::BenchCli cli = core::parseBenchCli(
        argc, argv,
        "Compiled-code comparison: the same tinyc sources compiled by\n"
        "our compiler for both machines, plus the compiler-vs-hand-code\n"
        "quality gap on RISC I for fib.");

    struct RowResult
    {
        std::vector<std::string> cells;
        std::string error;
    };
    const size_t nprograms = sizeof(programs) / sizeof(programs[0]);
    const auto results = core::ParallelRunner(
        cli.resolvedJobs).map<RowResult>(
        nprograms, [&](size_t slot) {
        const Compiled &prog = programs[slot];
        RowResult out;
        cc::RiscCompileResult risc_cc = cc::compileToRiscAsm(prog.source);
        cc::VaxCompileResult vax_cc = cc::compileToVax(prog.source);
        if (!risc_cc.ok || !vax_cc.ok) {
            out.error = std::string(prog.name) + ": compile failed: " +
                        risc_cc.error + vax_cc.error;
            return out;
        }
        sim::Cpu risc;
        risc.load(assembler::assembleOrDie(risc_cc.assembly));
        auto risc_run = risc.run();

        vax::VaxCpu vaxc;
        vaxc.load(vax_cc.program);
        auto vax_run = vaxc.run();

        const uint32_t risc_val =
            risc.memory().peek32(cc::CcResultAddr);
        const uint32_t vax_val =
            vaxc.memory().peek32(cc::CcResultAddr);
        const bool ok = risc_run.halted() && vax_run.halted() &&
                        risc_val == vax_val &&
                        (prog.expected == 0 || risc_val == prog.expected);

        const double risc_us =
            risc.stats().timeUs(sim::TimingModel{}.cycleTimeNs);
        const double vax_us =
            vaxc.stats().timeUs(vax::VaxTiming{}.cycleTimeNs);
        out.cells = {prog.name, ok ? "y" : "N",
                     cell(risc_run.instructions), cell(risc_run.cycles),
                     cell(vax_run.instructions), cell(vax_run.cycles),
                     cell(risc_us, 1), cell(vax_us, 1),
                     cell(risc_us > 0 ? vax_us / risc_us : 0)};
        return out;
    });

    core::Table table({"program", "ok", "RISC insts", "RISC cyc",
                       "vax insts", "vax cyc", "RISC us", "vax us",
                       "speedup"});
    for (const RowResult &result : results) {
        if (!result.error.empty()) {
            std::cerr << result.error << "\n";
            return 1;
        }
        table.row(result.cells);
    }
    std::cout << "Compiled-code comparison: identical tinyc sources "
                 "through our compiler, both machines\n"
              << table.str() << "\n";

    // Compiler-quality check: compiled fib vs the hand-coded suite fib.
    const auto *hand = workloads::findWorkload("fibonacci");
    sim::Cpu hand_cpu;
    hand_cpu.load(workloads::buildRisc(*hand, 20));
    auto hand_run = hand_cpu.run();

    cc::RiscCompileResult fib_cc = cc::compileToRiscAsm(
        programs[0].source);
    sim::Cpu cc_cpu;
    cc_cpu.load(assembler::assembleOrDie(fib_cc.assembly));
    auto cc_run = cc_cpu.run();

    std::cout << "Compiler quality on RISC I (fib(20)): hand-coded "
              << hand_run.cycles << " cycles, compiled "
              << cc_run.cycles << " cycles ("
              << core::cell(static_cast<double>(cc_run.cycles) /
                            static_cast<double>(hand_run.cycles))
              << "x)\n";
    return 0;
}
