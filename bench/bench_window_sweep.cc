/**
 * @file
 * Experiment E6: window overflow rate vs number of windows over the
 * recursive suite (the paper's figure arguing for 8 windows).
 */

#include <iostream>

#include "core/calltrace.hh"
#include "core/experiments.hh"

int
main()
{
    // Worst case: the recursive benchmark suite (deep excursions).
    auto rows = risc1::core::windowSweep();
    std::cout << risc1::core::windowSweepTable(rows) << "\n";

    // Typical case: a C-like call/return trace (the paper's argument
    // that 8 windows catch all but ~1% of calls).
    auto synth = risc1::core::syntheticWindowSweep(
        {2, 4, 6, 8, 12, 16});
    std::cout << risc1::core::syntheticWindowSweepTable(synth) << "\n";
    return 0;
}
