/**
 * @file
 * Experiment E6: window overflow rate vs number of windows over the
 * recursive suite (the paper's figure arguing for 8 windows).
 */

#include <iostream>

#include "core/calltrace.hh"
#include "core/cli.hh"
#include "core/experiments.hh"
#include "core/parallel.hh"

int
main(int argc, char **argv)
{
    const risc1::core::BenchCli cli = risc1::core::parseBenchCli(
        argc, argv,
        "E6: window overflow rate vs number of windows over the\n"
        "recursive suite (the paper's figure arguing for 8 windows).");

    // Worst case: the recursive benchmark suite (deep excursions).
    auto rows = risc1::core::windowSweep({2, 4, 6, 8, 12, 16},
                                         cli.resolvedJobs);
    std::cout << risc1::core::windowSweepTable(rows) << "\n";

    // Typical case: a C-like call/return trace (the paper's argument
    // that 8 windows catch all but ~1% of calls).
    auto synth = risc1::core::syntheticWindowSweep(
        {2, 4, 6, 8, 12, 16});
    std::cout << risc1::core::syntheticWindowSweepTable(synth) << "\n";
    return 0;
}
