/**
 * @file
 * Experiment E1: regenerate Table I — the RISC I instruction set.
 */

#include <iostream>

#include "core/experiments.hh"

int
main()
{
    std::cout << risc1::core::isaTable() << "\n";
    return 0;
}
