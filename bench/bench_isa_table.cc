/**
 * @file
 * Experiment E1: regenerate Table I — the RISC I instruction set.
 */

#include <iostream>

#include "core/cli.hh"
#include "core/experiments.hh"

int
main(int argc, char **argv)
{
    risc1::core::parseBenchCli(
        argc, argv,
        "E1: regenerate Table I — the RISC I instruction set.\n"
        "(A pure table printer: --jobs is accepted but has no effect.)");
    std::cout << risc1::core::isaTable() << "\n";
    return 0;
}
