# Byte-identity check for the recovery campaign: the same (injections,
# seed, interval) must print the same table for --jobs 1 vs --jobs 4,
# in both the flat and --tally streaming aggregation modes. Run by the
# bench_fault_campaign_recover_determinism ctest; CAMPAIGN is the
# bench_fault_campaign executable.

set(base_args 3 7 --recover --checkpoint-interval 500)

set(variants
    "--jobs 1"
    "--jobs 4"
    "--jobs 1 --tally"
    "--jobs 4 --tally")

set(reference "")
foreach(pretty IN LISTS variants)
    separate_arguments(variant UNIX_COMMAND "${pretty}")
    execute_process(
        COMMAND ${CAMPAIGN} ${base_args} ${variant}
        OUTPUT_VARIABLE output
        RESULT_VARIABLE status)
    if(NOT status EQUAL 0)
        message(FATAL_ERROR "campaign failed (${pretty}): status ${status}")
    endif()
    if(reference STREQUAL "")
        set(reference "${output}")
    elseif(NOT output STREQUAL reference)
        message(FATAL_ERROR
            "recovery table differs for '${pretty}':\n${output}\n"
            "reference:\n${reference}")
    endif()
endforeach()
message(STATUS "recovery tables byte-identical across jobs and modes")
