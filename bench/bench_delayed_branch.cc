/**
 * @file
 * Experiment E9: delay-slot fill rate and the cycles it saves.
 */

#include <iostream>

#include "core/experiments.hh"

int
main()
{
    auto rows = risc1::core::delaySlots();
    std::cout << risc1::core::delaySlotTable(rows) << "\n";
    return 0;
}
