/**
 * @file
 * Experiment E9: delay-slot fill rate and the cycles it saves.
 */

#include <iostream>

#include "core/cli.hh"
#include "core/experiments.hh"
#include "core/parallel.hh"

int
main(int argc, char **argv)
{
    using namespace risc1::core;
    const BenchCli cli = parseBenchCli(
        argc, argv,
        "E9: delay-slot fill rate and the cycles it saves.");
    auto rows = delaySlots(cli.resolvedJobs);
    std::cout << delaySlotTable(rows) << "\n";
    return 0;
}
