/**
 * @file
 * Experiment E7: memory traffic per program on both machines.
 */

#include <iostream>

#include "core/experiments.hh"

int
main()
{
    auto rows = risc1::core::memTraffic();
    std::cout << risc1::core::memTrafficTable(rows) << "\n";
    return 0;
}
