/**
 * @file
 * Experiment E7: memory traffic per program on both machines.
 */

#include <iostream>

#include "core/cli.hh"
#include "core/experiments.hh"
#include "core/parallel.hh"

int
main(int argc, char **argv)
{
    using namespace risc1::core;
    const BenchCli cli = parseBenchCli(
        argc, argv,
        "E7: memory traffic per program on both machines.");
    auto rows = memTraffic(cli.resolvedJobs);
    std::cout << memTrafficTable(rows) << "\n";
    return 0;
}
