/**
 * @file
 * The campaign fleet coordinator driver: a fault-injection campaign
 * sharded into seed ranges, fanned out over bench_fault_campaign
 * worker subprocesses, persisted shard by shard to a durable cache,
 * and merged into the R1 campaign table plus the R3 recovery-aware
 * AVF table. Interrupt it at any point and re-run with the same
 * arguments: completed shards are merged warm from the cache and the
 * final tables are byte-identical to an uninterrupted run, at any
 * worker count. Hung workers are killed by a wall-clock watchdog and
 * crashed workers re-queued with bounded retries; a shard that keeps
 * failing, or an environment where subprocesses cannot be spawned at
 * all, degrades to in-process execution. Tables go to stdout; the
 * coordinator's account of itself (shards cached/computed/retried)
 * goes to stderr so resumed runs stay byte-comparable. See
 * docs/ROBUSTNESS.md §5.
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include <unistd.h>

#include "core/cli.hh"
#include "core/fleet.hh"
#include "core/parallel.hh"
#include "support/logging.hh"

namespace {

/** Default worker binary: bench_fault_campaign next to this one. */
std::string
siblingWorker(const char *argv0)
{
    std::string path(argv0);
    const size_t slash = path.rfind('/');
    path.resize(slash == std::string::npos ? 0 : slash + 1);
    path += "bench_fault_campaign";
    return ::access(path.c_str(), X_OK) == 0 ? path : std::string();
}

} // namespace

int
main(int argc, char **argv)
{
    const risc1::core::BenchCli cli = risc1::core::parseBenchCli(
        argc, argv,
        "Campaign fleet coordinator: the R1 fault campaign sharded\n"
        "into seed ranges and fanned out over bench_fault_campaign\n"
        "worker subprocesses. Every completed shard is persisted to\n"
        "the cache directory, so an interrupted campaign resumes\n"
        "warm and prints byte-identical tables; hung or crashed\n"
        "workers are re-queued with bounded retries. Prints the R1\n"
        "campaign table and the R3 recovery-aware per-fault-target\n"
        "AVF table on stdout; fleet statistics go to stderr.\n"
        "Defaults: 100 injections, seed 1981, hardware-concurrency\n"
        "workers, 1 job per worker (--jobs sets the per-worker\n"
        "thread count), ~4 shards per worker, cache directory\n"
        "campaign_fleet.cache.\n"
        "  --workers N        concurrent worker subprocesses\n"
        "  --shard-size S     grid slots per shard\n"
        "  --cache-dir DIR    durable shard cache location\n"
        "  --worker-exe PATH  worker binary (bench_fault_campaign)\n"
        "  --in-process       run shards in-process (no subprocesses)\n"
        "  --no-cache         disable persistence (in-process only)\n"
        "  --max-retries R    re-queues per shard (default 2)\n"
        "  --watchdog-sec T   per-shard wall-clock timeout\n"
        "  --halt-after N     crash-simulation hook: stop (exit 3)\n"
        "                     after N shards are merged\n"
        "  --tally / --recover / --checkpoint-interval K as for\n"
        "  bench_fault_campaign.",
        "[injections] [seed] [--workers N] [--shard-size S] "
        "[--cache-dir DIR] [--worker-exe PATH] [--in-process] "
        "[--no-cache] [--tally] [--recover] [--checkpoint-interval K] "
        "[--max-retries R] [--watchdog-sec T] [--halt-after N]");

    risc1::core::FleetOptions opts;
    opts.workers = risc1::core::resolveJobs(0);
    opts.jobsPerWorker = cli.jobs ? cli.jobs : 1;
    opts.streaming = false;
    opts.cacheDir = "campaign_fleet.cache";
    bool in_process = false;
    bool no_cache = false;
    std::string worker_exe;
    int out = 1;
    auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::cerr << argv[0] << ": " << argv[i]
                      << " needs a value\n";
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--workers") == 0) {
            opts.workers = static_cast<unsigned>(
                std::strtoul(value(i), nullptr, 0));
        } else if (std::strcmp(argv[i], "--shard-size") == 0) {
            opts.shardSlots = std::strtoull(value(i), nullptr, 0);
        } else if (std::strcmp(argv[i], "--cache-dir") == 0) {
            opts.cacheDir = value(i);
        } else if (std::strcmp(argv[i], "--worker-exe") == 0) {
            worker_exe = value(i);
        } else if (std::strcmp(argv[i], "--in-process") == 0) {
            in_process = true;
        } else if (std::strcmp(argv[i], "--no-cache") == 0) {
            no_cache = true;
        } else if (std::strcmp(argv[i], "--tally") == 0) {
            opts.streaming = true;
        } else if (std::strcmp(argv[i], "--recover") == 0) {
            opts.recovery.enabled = true;
        } else if (std::strcmp(argv[i], "--checkpoint-interval") == 0) {
            opts.recovery.checkpointInterval =
                std::strtoull(value(i), nullptr, 0);
        } else if (std::strcmp(argv[i], "--max-retries") == 0) {
            opts.maxRetries = static_cast<unsigned>(
                std::strtoul(value(i), nullptr, 0));
        } else if (std::strcmp(argv[i], "--watchdog-sec") == 0) {
            opts.workerTimeoutSec = std::strtod(value(i), nullptr);
        } else if (std::strcmp(argv[i], "--halt-after") == 0) {
            opts.haltAfterShards = static_cast<unsigned>(
                std::strtoul(value(i), nullptr, 0));
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    if (argc > 1)
        opts.injections = static_cast<unsigned>(
            std::strtoul(argv[1], nullptr, 0));
    if (argc > 2)
        opts.seed = std::strtoull(argv[2], nullptr, 0);

    if (opts.workers == 0)
        opts.workers = 1;
    if (!in_process)
        opts.workerExe =
            worker_exe.empty() ? siblingWorker(argv[0]) : worker_exe;
    if (opts.workerExe.empty() && !in_process)
        risc1::warn("campaign_fleet: no worker binary next to %s, "
                    "running in-process",
                    argv[0]);
    if (no_cache) {
        if (!opts.workerExe.empty())
            risc1::fatal("campaign_fleet: --no-cache needs "
                         "--in-process (workers hand results back "
                         "through the cache)");
        opts.cacheDir.clear();
    }

    const risc1::core::FleetResult result = risc1::core::runFleet(opts);
    const auto &s = result.stats;
    risc1::inform(
        "fleet: %u shards (%u cached, %u worker-computed, %u "
        "in-process, %u cache entries rejected); %u crashes, %u "
        "timeouts, %u re-queues",
        s.shards, s.cachedShards, s.computedShards, s.inProcessShards,
        s.rejectedCache, s.workerCrashes, s.workerTimeouts, s.retries);
    if (s.halted) {
        risc1::inform("fleet: halted after %u shards (crash "
                      "simulation); cache is partial, no tables",
                      s.cachedShards + s.computedShards +
                          s.inProcessShards);
        return 3;
    }

    std::cout << risc1::core::faultCampaignTable(
                     result.rows, opts.recovery.enabled)
              << "\n";
    std::cout << risc1::core::avfTable(
                     risc1::core::avfReport(result.rows),
                     opts.recovery.enabled)
              << "\n";
    return 0;
}
