/**
 * @file
 * The campaign fleet coordinator driver: a fault-injection campaign
 * sharded into seed ranges, fanned out over workers, persisted shard
 * by shard to a durable cache, and merged into the R1 campaign table
 * plus the R3 recovery-aware AVF table. Workers come in three tiers:
 * remote TCP workers speaking the framed fleet protocol (--listen,
 * served by `campaign_fleet --worker-connect` processes anywhere on
 * the loopback), bench_fault_campaign subprocesses, and in-process
 * execution — and the coordinator degrades down the list whenever the
 * tier above is unreachable. Interrupt it at any point and re-run
 * with the same arguments: completed shards are merged warm from the
 * cache and the final tables are byte-identical to an uninterrupted
 * run, at any worker count and over any mix of tiers. Hung or
 * crashed workers (local or remote) have their shards re-queued with
 * bounded, jittered retries; a remote worker that stalls its
 * heartbeat, breaks the protocol, or returns a record that fails
 * validation is quarantined without touching the campaign. While a
 * campaign runs, `campaign_fleet --status HOST:PORT` prints the live
 * merged tally table. Tables go to stdout; the coordinator's account
 * of itself (shards cached/computed/retried) goes to stderr so
 * resumed runs stay byte-comparable. See docs/ROBUSTNESS.md §5–§6.
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "core/cli.hh"
#include "core/fleet.hh"
#include "core/fleetnet.hh"
#include "core/parallel.hh"
#include "support/logging.hh"

namespace {

/** Default worker binary: bench_fault_campaign next to this one. */
std::string
siblingWorker(const char *argv0)
{
    std::string path(argv0);
    const size_t slash = path.rfind('/');
    path.resize(slash == std::string::npos ? 0 : slash + 1);
    path += "bench_fault_campaign";
    return ::access(path.c_str(), X_OK) == 0 ? path : std::string();
}

/** Fork+exec one `campaign_fleet --worker-connect` child. */
pid_t
spawnWorker(const char *argv0, uint16_t port, unsigned jobs)
{
    const std::string target = "127.0.0.1:" + std::to_string(port);
    const std::string jobs_text = std::to_string(jobs ? jobs : 1);
    const pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    ::execl(argv0, argv0, "--worker-connect", target.c_str(), "--jobs",
            jobs_text.c_str(), static_cast<char *>(nullptr));
    ::_exit(127);
}

} // namespace

int
main(int argc, char **argv)
{
    const risc1::core::BenchCli cli = risc1::core::parseBenchCli(
        argc, argv,
        "Campaign fleet coordinator: the R1 fault campaign sharded\n"
        "into seed ranges and fanned out over workers — remote TCP\n"
        "workers when --listen is given, bench_fault_campaign\n"
        "subprocesses otherwise, degrading to in-process execution\n"
        "when neither is reachable. Every completed shard is\n"
        "persisted to the cache directory, so an interrupted\n"
        "campaign resumes warm and prints byte-identical tables;\n"
        "hung, crashed, or protocol-breaking workers are quarantined\n"
        "and their shards re-queued with bounded jittered retries.\n"
        "Prints the R1 campaign table and the R3 recovery-aware\n"
        "per-fault-target AVF table on stdout; fleet statistics go\n"
        "to stderr.\n"
        "Defaults: 100 injections, seed 1981, hardware-concurrency\n"
        "workers, 1 job per worker (--jobs sets the per-worker\n"
        "thread count), ~4 shards per worker, cache directory\n"
        "campaign_fleet.cache.\n"
        "  --workers N        concurrent worker subprocesses\n"
        "  --shard-size S     grid slots per shard\n"
        "  --cache-dir DIR    durable shard cache location\n"
        "  --worker-exe PATH  worker binary (bench_fault_campaign)\n"
        "  --in-process       run shards in-process (no subprocesses)\n"
        "  --no-cache         disable persistence (in-process only)\n"
        "  --max-retries R    re-queues per shard (default 2)\n"
        "  --watchdog-sec T   per-shard wall-clock timeout\n"
        "  --halt-after N     crash-simulation hook: stop (exit 3)\n"
        "                     after N shards are merged\n"
        "  --listen PORT      serve remote TCP workers and the live\n"
        "                     status endpoint (0 = ephemeral port)\n"
        "  --port-file PATH   write the bound --listen port to PATH\n"
        "  --spawn-workers N  launch N local `campaign_fleet\n"
        "                     --worker-connect` processes\n"
        "  --heartbeat-sec H  heartbeat cadence expected of remote\n"
        "                     workers (stall after 4x silence)\n"
        "  --remote-grace T   wait T sec for a first remote worker\n"
        "                     before degrading (default 2)\n"
        "  --also INJ:SEED    run an extra tenant campaign over the\n"
        "                     same worker pool (repeatable)\n"
        "  --worker-connect HOST:PORT   run as a remote worker\n"
        "  --status HOST:PORT print a running coordinator's live\n"
        "                     merged tallies and exit\n"
        "  --tally / --recover / --checkpoint-interval K as for\n"
        "  bench_fault_campaign.",
        "[injections] [seed] [--workers N] [--shard-size S] "
        "[--cache-dir DIR] [--worker-exe PATH] [--in-process] "
        "[--no-cache] [--tally] [--recover] [--checkpoint-interval K] "
        "[--max-retries R] [--watchdog-sec T] [--halt-after N] "
        "[--listen PORT] [--port-file PATH] [--spawn-workers N] "
        "[--heartbeat-sec H] [--remote-grace T] [--also INJ:SEED] "
        "[--worker-connect HOST:PORT] [--status HOST:PORT]");

    risc1::core::FleetOptions opts;
    opts.workers = risc1::core::resolveJobs(0);
    opts.jobsPerWorker = cli.jobs ? cli.jobs : 1;
    opts.streaming = false;
    opts.cacheDir = "campaign_fleet.cache";
    bool in_process = false;
    bool no_cache = false;
    bool listen = false;
    unsigned long listen_port = 0;
    unsigned spawn_workers = 0;
    double heartbeat_sec = 1.0;
    std::string worker_exe;
    std::string port_file;
    std::string worker_connect;
    std::string status_target;
    std::vector<std::pair<unsigned, uint64_t>> also;
    int out = 1;
    auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::cerr << argv[0] << ": " << argv[i]
                      << " needs a value\n";
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--workers") == 0) {
            opts.workers = static_cast<unsigned>(
                std::strtoul(value(i), nullptr, 0));
        } else if (std::strcmp(argv[i], "--shard-size") == 0) {
            opts.shardSlots = std::strtoull(value(i), nullptr, 0);
        } else if (std::strcmp(argv[i], "--cache-dir") == 0) {
            opts.cacheDir = value(i);
        } else if (std::strcmp(argv[i], "--worker-exe") == 0) {
            worker_exe = value(i);
        } else if (std::strcmp(argv[i], "--in-process") == 0) {
            in_process = true;
        } else if (std::strcmp(argv[i], "--no-cache") == 0) {
            no_cache = true;
        } else if (std::strcmp(argv[i], "--tally") == 0) {
            opts.streaming = true;
        } else if (std::strcmp(argv[i], "--recover") == 0) {
            opts.recovery.enabled = true;
        } else if (std::strcmp(argv[i], "--checkpoint-interval") == 0) {
            opts.recovery.checkpointInterval =
                std::strtoull(value(i), nullptr, 0);
        } else if (std::strcmp(argv[i], "--max-retries") == 0) {
            opts.maxRetries = static_cast<unsigned>(
                std::strtoul(value(i), nullptr, 0));
        } else if (std::strcmp(argv[i], "--watchdog-sec") == 0) {
            opts.workerTimeoutSec = std::strtod(value(i), nullptr);
        } else if (std::strcmp(argv[i], "--halt-after") == 0) {
            opts.haltAfterShards = static_cast<unsigned>(
                std::strtoul(value(i), nullptr, 0));
        } else if (std::strcmp(argv[i], "--listen") == 0) {
            listen = true;
            listen_port = std::strtoul(value(i), nullptr, 0);
        } else if (std::strcmp(argv[i], "--port-file") == 0) {
            port_file = value(i);
        } else if (std::strcmp(argv[i], "--spawn-workers") == 0) {
            spawn_workers = static_cast<unsigned>(
                std::strtoul(value(i), nullptr, 0));
        } else if (std::strcmp(argv[i], "--heartbeat-sec") == 0) {
            heartbeat_sec = std::strtod(value(i), nullptr);
        } else if (std::strcmp(argv[i], "--remote-grace") == 0) {
            opts.remoteGraceSec = std::strtod(value(i), nullptr);
        } else if (std::strcmp(argv[i], "--also") == 0) {
            const char *spec = value(i);
            const char *colon = std::strchr(spec, ':');
            if (!colon)
                risc1::fatal("campaign_fleet: --also wants INJ:SEED, "
                             "got '%s'",
                             spec);
            also.emplace_back(
                static_cast<unsigned>(std::strtoul(spec, nullptr, 0)),
                std::strtoull(colon + 1, nullptr, 0));
        } else if (std::strcmp(argv[i], "--worker-connect") == 0) {
            worker_connect = value(i);
        } else if (std::strcmp(argv[i], "--status") == 0) {
            status_target = value(i);
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    if (argc > 1)
        opts.injections = static_cast<unsigned>(
            std::strtoul(argv[1], nullptr, 0));
    if (argc > 2)
        opts.seed = std::strtoull(argv[2], nullptr, 0);

    // Client modes: worker and status. Both exit without coordinating.
    if (!worker_connect.empty()) {
        const auto target = risc1::core::parseHostPort(worker_connect);
        if (!target)
            risc1::fatal("campaign_fleet: bad --worker-connect "
                         "'%s' (want HOST:PORT)",
                         worker_connect.c_str());
        try {
            const unsigned completed = risc1::core::runFleetWorker(
                target->first, target->second,
                cli.jobs ? cli.jobs : 1);
            risc1::inform("fleet worker: %u shards computed",
                          completed);
            return 0;
        } catch (const std::exception &err) {
            std::cerr << "campaign_fleet worker: " << err.what()
                      << "\n";
            return 1;
        }
    }
    if (!status_target.empty()) {
        const auto target = risc1::core::parseHostPort(status_target);
        if (!target)
            risc1::fatal("campaign_fleet: bad --status '%s' (want "
                         "HOST:PORT)",
                         status_target.c_str());
        try {
            const std::string text = risc1::core::fetchFleetStatus(
                target->first, target->second);
            std::cout << (text.empty() ? "no status yet\n" : text);
            return 0;
        } catch (const std::exception &err) {
            std::cerr << "campaign_fleet status: " << err.what()
                      << "\n";
            return 1;
        }
    }

    if (opts.workers == 0)
        opts.workers = 1;
    if (!in_process)
        opts.workerExe =
            worker_exe.empty() ? siblingWorker(argv[0]) : worker_exe;
    if (opts.workerExe.empty() && !in_process && !listen)
        risc1::warn("campaign_fleet: no worker binary next to %s, "
                    "running in-process",
                    argv[0]);
    if (no_cache) {
        if (!opts.workerExe.empty())
            risc1::fatal("campaign_fleet: --no-cache needs "
                         "--in-process (workers hand results back "
                         "through the cache)");
        opts.cacheDir.clear();
    }

    // The remote tier: a pool serving TCP workers and status clients.
    std::unique_ptr<risc1::core::RemotePool> pool;
    std::vector<pid_t> spawned;
    if (listen) {
        if (listen_port > 65535)
            risc1::fatal("campaign_fleet: --listen port %lu out of "
                         "range",
                         listen_port);
        risc1::core::PoolOptions pool_opts;
        pool_opts.port = static_cast<uint16_t>(listen_port);
        pool_opts.heartbeatSec = heartbeat_sec;
        pool = std::make_unique<risc1::core::RemotePool>(pool_opts);
        opts.pool = pool.get();
        risc1::inform("fleet: listening for workers on 127.0.0.1:%u",
                      static_cast<unsigned>(pool->port()));
        if (!port_file.empty()) {
            std::ofstream f(port_file);
            f << pool->port() << "\n";
            if (!f)
                risc1::fatal("campaign_fleet: cannot write %s",
                             port_file.c_str());
        }
        for (unsigned i = 0; i < spawn_workers; ++i)
            spawned.push_back(
                spawnWorker(argv[0], pool->port(), cli.jobs));
    } else if (spawn_workers || !port_file.empty()) {
        risc1::fatal("campaign_fleet: --spawn-workers/--port-file "
                     "need --listen");
    }

    // Tenants: the primary campaign plus one per --also, sharing the
    // infrastructure half of the primary's options.
    std::vector<risc1::core::FleetOptions> tenants{opts};
    for (const auto &[injections, seed] : also) {
        risc1::core::FleetOptions tenant = opts;
        tenant.injections = injections;
        tenant.seed = seed;
        tenant.haltAfterShards = 0;
        tenants.push_back(tenant);
    }

    const std::vector<risc1::core::FleetResult> results =
        risc1::core::runFleets(tenants);

    for (const pid_t pid : spawned) {
        ::kill(pid, SIGKILL);
        int status = 0;
        ::waitpid(pid, &status, 0);
    }
    if (pool)
        pool->shutdown();

    bool halted = false;
    for (size_t t = 0; t < results.size(); ++t) {
        const auto &s = results[t].stats;
        risc1::inform(
            "fleet%s: %u shards (%u cached, %u worker-computed, %u "
            "remote, %u in-process, %u cache entries rejected); %u "
            "crashes, %u timeouts, %u re-queues, %u remote stalls, "
            "%u workers quarantined",
            t == 0 ? ""
                   : risc1::strprintf(" [tenant %zu]", t).c_str(),
            s.shards, s.cachedShards, s.computedShards, s.remoteShards,
            s.inProcessShards, s.rejectedCache, s.workerCrashes,
            s.workerTimeouts, s.retries, s.remoteStalls,
            s.quarantinedWorkers);
        if (s.halted) {
            risc1::inform("fleet: halted after %u shards (crash "
                          "simulation); cache is partial, no tables",
                          s.cachedShards + s.computedShards +
                              s.remoteShards + s.inProcessShards);
            halted = true;
            continue;
        }
        if (t > 0)
            std::cout << "== tenant " << t
                      << ": injections=" << tenants[t].injections
                      << " seed=" << tenants[t].seed << " ==\n";
        std::cout << risc1::core::faultCampaignTable(
                         results[t].rows,
                         tenants[t].recovery.enabled)
                  << "\n";
        std::cout << risc1::core::avfTable(
                         risc1::core::avfReport(results[t].rows),
                         tenants[t].recovery.enabled)
                  << "\n";
    }
    return halted ? 3 : 0;
}
