/**
 * @file
 * Experiment E2: regenerate the overlapped register-window figure as a
 * mapping table, for the architected 8 windows and two study points.
 */

#include <iostream>

#include "core/experiments.hh"

int
main()
{
    using risc1::core::windowGeometryReport;
    std::cout << windowGeometryReport(8) << "\n";
    std::cout << windowGeometryReport(4) << "\n";
    return 0;
}
