/**
 * @file
 * Experiment E2: regenerate the overlapped register-window figure as a
 * mapping table, for the architected 8 windows and two study points.
 */

#include <iostream>

#include "core/cli.hh"
#include "core/experiments.hh"

int
main(int argc, char **argv)
{
    using risc1::core::windowGeometryReport;
    risc1::core::parseBenchCli(
        argc, argv,
        "E2: regenerate the overlapped register-window figure as a\n"
        "mapping table, for the architected 8 windows and two study\n"
        "points. (A pure table printer: --jobs is accepted but has no\n"
        "effect.)");
    std::cout << windowGeometryReport(8) << "\n";
    std::cout << windowGeometryReport(4) << "\n";
    return 0;
}
