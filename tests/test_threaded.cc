/**
 * @file
 * The threaded-code execution engine, instruction fusion, and the
 * shared ProgramImage load path.
 *
 * Differential tests pin the engine's central claim: threading and
 * fusion are pure optimisations. Threaded+fused vs the plain
 * interpreter must produce identical results and statistics over the
 * whole workload suite, a self-modifying store must split a fused
 * pair mid-run without observable difference, and a Cpu loaded from a
 * shared ProgramImage must be indistinguishable from an eager
 * program load — including the touched-page set the fault injector
 * draws from.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "core/experiments.hh"
#include "sim/cpu.hh"
#include "sim/image.hh"
#include "support/logging.hh"
#include "workloads/workload.hh"

namespace {

using namespace risc1;

void
expectStatsEq(const sim::SimStats &a, const sim::SimStats &b,
              const std::string &what)
{
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.perOpcode, b.perOpcode) << what;
    EXPECT_EQ(a.perClass, b.perClass) << what;
    EXPECT_EQ(a.branches, b.branches) << what;
    EXPECT_EQ(a.branchesTaken, b.branchesTaken) << what;
    EXPECT_EQ(a.nopsExecuted, b.nopsExecuted) << what;
    EXPECT_EQ(a.calls, b.calls) << what;
    EXPECT_EQ(a.returns, b.returns) << what;
    EXPECT_EQ(a.windowOverflows, b.windowOverflows) << what;
    EXPECT_EQ(a.windowUnderflows, b.windowUnderflows) << what;
    EXPECT_EQ(a.spillWords, b.spillWords) << what;
    EXPECT_EQ(a.refillWords, b.refillWords) << what;
    EXPECT_EQ(a.memory.instFetches, b.memory.instFetches) << what;
    EXPECT_EQ(a.memory.dataReads, b.memory.dataReads) << what;
    EXPECT_EQ(a.memory.dataWrites, b.memory.dataWrites) << what;
}

/** Run `prog` to completion under the given engine configuration. */
sim::ExecResult
runWith(sim::Cpu &cpu, const assembler::Program &prog)
{
    cpu.load(prog);
    return cpu.run();
}

// ---- Threaded + fused vs the plain interpreter --------------------------

TEST(Threaded, RiscSuiteDifferential)
{
    for (const workloads::Workload &wl : workloads::allWorkloads()) {
        const assembler::Program prog =
            workloads::buildRisc(wl, wl.defaultScale);

        sim::Cpu fused; // threaded + fused is the default
        sim::CpuOptions nofuse_opts;
        nofuse_opts.fuse = false;
        sim::Cpu threaded(nofuse_opts);
        sim::CpuOptions plain_opts;
        plain_opts.threaded = false;
        sim::Cpu plain(plain_opts);

        const sim::ExecResult rfused = runWith(fused, prog);
        const sim::ExecResult rthreaded = runWith(threaded, prog);
        const sim::ExecResult rplain = runWith(plain, prog);

        EXPECT_EQ(rfused.reason, rplain.reason) << wl.name;
        EXPECT_EQ(rthreaded.reason, rplain.reason) << wl.name;
        EXPECT_EQ(fused.memory().peek32(workloads::ResultAddr),
                  plain.memory().peek32(workloads::ResultAddr))
            << wl.name;
        EXPECT_EQ(threaded.memory().peek32(workloads::ResultAddr),
                  plain.memory().peek32(workloads::ResultAddr))
            << wl.name;
        expectStatsEq(fused.stats(), plain.stats(), wl.name + " fused");
        expectStatsEq(threaded.stats(), plain.stats(),
                      wl.name + " threaded");
    }
}

TEST(Threaded, SelfModifyingStoreSplitsFusedPair)
{
    // Encoding of the replacement instruction: add r17, 100, r17.
    const assembler::Program enc =
        assembler::assembleOrDie("_start: add r17, 100, r17\n halt\n");
    const uint32_t patched = *enc.wordAt(enc.entry);

    // `pairA`/`pairB` form a compare + delayed-branch pair the engine
    // fuses into one superinstruction. After ten hot iterations — the
    // record and its fusion are long established — the store at
    // `patch_now` overwrites the SECOND component (the branch) with
    // `add r17, 100, r17`. The invalidation must split the pair:
    // afterwards the loop falls through into `b out` with
    // r17 = 10 + 100 = 110. A stale fused record would keep branching
    // to `hit` until r17 reached 50.
    // Low origin keeps the labels addressable as (r0)simm13 operands.
    const std::string src = strprintf(R"(
        .equ RESULT, %u
        .org  256
_start: ldl   (r0)newword, r16
        clr   r17
        clr   r18
loop:
pairA:  cmp   r17, 50
pairB:  blt   hit
        b     out
hit:    add   r17, 1, r17
        add   r18, 1, r18
        cmp   r18, 10
        bge   patch_now
        b     loop
patch_now:
        stl   r16, (r0)pairB
        b     loop
out:    stl   r17, (r0)RESULT
        halt
newword: .word %u
)",
                                      workloads::ResultAddr, patched);

    // No delay-slot filling: keep the store out of branch shadows so
    // the execution order above is exactly what runs.
    assembler::AsmOptions no_fill;
    no_fill.fillDelaySlots = false;
    const assembler::Program prog = assembler::assembleOrDie(src,
                                                             no_fill);

    sim::Cpu fused;
    sim::CpuOptions plain_opts;
    plain_opts.threaded = false;
    sim::Cpu plain(plain_opts);
    const sim::ExecResult rfused = runWith(fused, prog);
    const sim::ExecResult rplain = runWith(plain, prog);

    ASSERT_TRUE(rfused.halted());
    ASSERT_TRUE(rplain.halted());
    EXPECT_EQ(fused.memory().peek32(workloads::ResultAddr), 110u);
    EXPECT_EQ(plain.memory().peek32(workloads::ResultAddr), 110u);
    expectStatsEq(fused.stats(), plain.stats(), "fused-pair split");
}

// ---- Shared ProgramImage vs eager load ----------------------------------

TEST(Threaded, SharedImageMatchesEagerLoad)
{
    for (const workloads::Workload &wl : workloads::allWorkloads()) {
        const assembler::Program prog =
            workloads::buildRisc(wl, wl.defaultScale);
        const sim::ProgramImage image(prog);

        sim::Cpu eager;
        sim::Cpu shared;
        eager.load(prog);
        shared.load(image);

        // The fault injector draws its memory target uniformly from
        // the touched-page set, so the attach path must produce the
        // exact same pages as an eager load.
        EXPECT_EQ(eager.memory().pageIndices(),
                  shared.memory().pageIndices())
            << wl.name;

        const sim::ExecResult re = eager.run();
        const sim::ExecResult rs = shared.run();
        EXPECT_EQ(re.reason, rs.reason) << wl.name;
        EXPECT_EQ(eager.memory().peek32(workloads::ResultAddr),
                  shared.memory().peek32(workloads::ResultAddr))
            << wl.name;
        expectStatsEq(eager.stats(), shared.stats(), wl.name);
    }
}

TEST(Threaded, SharedImageSurvivesGuestWrites)
{
    // Two cpus sharing one image must not observe each other's writes:
    // pages are copy-on-write, so the image (and any sibling) keeps
    // the pristine bytes after a run mutates its private copy.
    const workloads::Workload *wl = workloads::findWorkload("fibonacci");
    ASSERT_NE(wl, nullptr);
    const sim::ProgramImage image(
        workloads::buildRisc(*wl, wl->defaultScale));

    sim::Cpu first;
    first.load(image);
    ASSERT_TRUE(first.run().halted());
    const uint32_t result = first.memory().peek32(workloads::ResultAddr);
    EXPECT_EQ(result, wl->expected(wl->defaultScale));

    // A second run from the same image starts from pristine state.
    sim::Cpu second;
    second.load(image);
    EXPECT_EQ(second.memory().peek32(workloads::ResultAddr), 0u);
    ASSERT_TRUE(second.run().halted());
    EXPECT_EQ(second.memory().peek32(workloads::ResultAddr), result);
}

// ---- Campaign jobs-invariance under shared-program mode -----------------

TEST(Threaded, FaultCampaignSharedJobsInvariant)
{
    const auto serial = core::faultCampaign(3, 999, 1);
    const auto parallel = core::faultCampaign(3, 999, 3);
    EXPECT_EQ(core::faultCampaignTable(serial),
              core::faultCampaignTable(parallel));
}

} // namespace
