/**
 * @file
 * Synthetic call-trace window study tests: determinism, conservation
 * invariants, monotone overflow decline, and the paper's 8-window
 * operating point.
 */

#include <gtest/gtest.h>

#include "core/calltrace.hh"

namespace {

using namespace risc1::core;

TEST(CallTrace, DeterministicForAGivenSeed)
{
    const auto a = syntheticWindowSweep({8});
    const auto b = syntheticWindowSweep({8});
    ASSERT_EQ(a.size(), 1u);
    EXPECT_EQ(a[0].calls, b[0].calls);
    EXPECT_EQ(a[0].overflows, b[0].overflows);
    EXPECT_EQ(a[0].maxDepth, b[0].maxDepth);
}

TEST(CallTrace, SameTraceAcrossWindowCounts)
{
    const auto rows = syntheticWindowSweep({2, 4, 8, 16});
    for (size_t i = 1; i < rows.size(); ++i) {
        EXPECT_EQ(rows[i].calls, rows[0].calls);
        EXPECT_EQ(rows[i].maxDepth, rows[0].maxDepth);
    }
}

TEST(CallTrace, TwoWindowsOverflowEverything)
{
    const auto rows = syntheticWindowSweep({2});
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].overflows, rows[0].calls);
    EXPECT_DOUBLE_EQ(rows[0].overflowPct, 100.0);
}

TEST(CallTrace, OverflowDeclinesMonotonically)
{
    const auto rows = syntheticWindowSweep({2, 3, 4, 6, 8, 12, 16});
    for (size_t i = 1; i < rows.size(); ++i)
        EXPECT_LE(rows[i].overflows, rows[i - 1].overflows)
            << rows[i].windows;
}

TEST(CallTrace, EnoughWindowsMeansNoOverflow)
{
    const auto rows = syntheticWindowSweep({8});
    const unsigned plenty =
        static_cast<unsigned>(rows[0].maxDepth) + 2;
    const auto calm = syntheticWindowSweep({plenty});
    EXPECT_EQ(calm[0].overflows, 0u);
}

TEST(CallTrace, DeeperExcursionsWithFlatterDecay)
{
    CallTraceParams steep;   // default: strong mean reversion
    CallTraceParams shallow; // weaker pull -> deeper excursions
    shallow.slopePct = 4;
    const auto a = syntheticWindowSweep({8}, steep);
    const auto b = syntheticWindowSweep({8}, shallow);
    EXPECT_GT(b[0].maxDepth, a[0].maxDepth);
    EXPECT_GT(b[0].overflowPct, a[0].overflowPct);
}

TEST(CallTrace, TableRendersSeries)
{
    const std::string table =
        syntheticWindowSweepTable(syntheticWindowSweep({2, 8}));
    EXPECT_NE(table.find("overflow %"), std::string::npos);
    EXPECT_NE(table.find("100.00"), std::string::npos);
}

} // namespace
