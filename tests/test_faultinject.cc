/**
 * @file
 * Fault-injection tests: deterministic replay of campaign rows,
 * outcome completeness, transience of fetch-word flips, and bounds on
 * drawn injections.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "core/experiments.hh"
#include "sim/cpu.hh"
#include "sim/faultinject.hh"
#include "support/rng.hh"
#include "workloads/workload.hh"

namespace {

using namespace risc1;
using assembler::assembleOrDie;

TEST(FaultInject, CampaignIsDeterministicForFixedSeed)
{
    auto first = core::faultCampaign(5, 1981);
    auto second = core::faultCampaign(5, 1981);
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].name, second[i].name);
        EXPECT_EQ(first[i].baselineInsts, second[i].baselineInsts);
        for (unsigned c = 0; c < core::NumFaultOutcomes; ++c)
            EXPECT_EQ(first[i].byOutcome[c], second[i].byOutcome[c])
                << first[i].name << " outcome " << c;
    }
}

TEST(FaultInject, EveryRunIsClassified)
{
    for (const auto &row : core::faultCampaign(8, 7)) {
        unsigned sum = 0;
        for (unsigned c = 0; c < core::NumFaultOutcomes; ++c)
            sum += row.byOutcome[c];
        EXPECT_EQ(sum, row.injections) << row.name;
    }
}

TEST(FaultInject, DifferentSeedsDrawDifferentInjections)
{
    Rng a(1), b(2);
    bool differ = false;
    for (int i = 0; i < 8 && !differ; ++i) {
        sim::Injection x = sim::drawInjection(a, 1000);
        sim::Injection y = sim::drawInjection(b, 1000);
        differ = x.target != y.target || x.bit != y.bit ||
                 x.atInstruction != y.atInstruction;
    }
    EXPECT_TRUE(differ);
}

TEST(FaultInject, DrawnInjectionsAreInBounds)
{
    Rng rng(42);
    for (int i = 0; i < 200; ++i) {
        sim::Injection inj = sim::drawInjection(rng, 1234);
        EXPECT_LT(inj.bit, 32u);
        EXPECT_LT(inj.atInstruction, 1234u);
    }
}

TEST(FaultInject, FetchFlipIsTransient)
{
    // Corrupting the fetched word must not alter the stored program:
    // flip the whole opcode field of the first instruction to zero so
    // decode faults, then check memory still holds the original image.
    sim::Cpu cpu;
    cpu.load(assembleOrDie(R"(
main:   mov   7, r16
        halt
)"));
    const uint32_t entry = cpu.pc();
    const uint32_t original = cpu.memory().peek32(entry);
    ASSERT_NE(original, 0u);

    cpu.corruptNextFetch(original); // word ^ original == 0 → illegal
    auto result = cpu.run();
    EXPECT_EQ(result.reason, sim::StopReason::Fault);
    EXPECT_EQ(result.faultCause, isa::TrapCause::IllegalOpcode);
    EXPECT_EQ(cpu.memory().peek32(entry), original);
}

TEST(FaultInject, FetchCorruptionOnlyHitsOneFetch)
{
    // A flip that turns `mov 7, r16` into a different-but-legal word
    // would run on; here we flip a bit that keeps the opcode legal by
    // flipping the immediate instead, and the program must still halt.
    sim::Cpu cpu;
    cpu.load(assembleOrDie(R"(
main:   mov   7, r16
        stl   r16, (r0)800
        halt
)"));
    cpu.corruptNextFetch(1u); // flip bit 0 of the first word
    auto result = cpu.run();
    if (result.halted()) {
        // The corrupted immediate (7^1 = 6) reached r16; the stored
        // program was untouched, so a re-run gives the true value.
        EXPECT_EQ(cpu.memory().peek32(800), 6u);
        sim::Cpu again;
        again.load(assembleOrDie(R"(
main:   mov   7, r16
        stl   r16, (r0)800
        halt
)"));
        ASSERT_TRUE(again.run().halted());
        EXPECT_EQ(again.memory().peek32(800), 7u);
    }
}

TEST(FaultInject, RegisterInjectionFlipsExactlyOneBit)
{
    sim::Cpu cpu;
    cpu.load(assembleOrDie(R"(
main:   b     main
)"));
    Rng rng(99);
    sim::Injection inj;
    inj.target = sim::InjectTarget::Register;
    inj.atInstruction = 0;
    inj.bit = 5;
    sim::applyInjection(cpu, rng, inj);
    EXPECT_TRUE(inj.applied);
    EXPECT_EQ(inj.oldValue ^ inj.newValue, 1u << 5);
    EXPECT_EQ(cpu.regfile().readPhys(inj.physReg), inj.newValue);
}

TEST(FaultInject, MemoryInjectionFlipsATouchedWord)
{
    sim::Cpu cpu;
    cpu.load(assembleOrDie(R"(
main:   b     main
)"));
    Rng rng(7);
    sim::Injection inj;
    inj.target = sim::InjectTarget::Memory;
    inj.atInstruction = 0;
    inj.bit = 12;
    sim::applyInjection(cpu, rng, inj);
    EXPECT_TRUE(inj.applied);
    EXPECT_EQ(inj.oldValue ^ inj.newValue, 1u << 12);
    EXPECT_EQ(cpu.memory().peek32(inj.memAddr), inj.newValue);
    EXPECT_EQ(inj.memAddr % 4, 0u);
}

TEST(FaultInject, RunWithInjectionPausesAppliesAndFinishes)
{
    sim::Cpu cpu;
    cpu.load(assembleOrDie(R"(
main:   mov   1, r16
        mov   2, r16
        mov   3, r16
        halt
)"));
    Rng rng(3);
    sim::Injection inj;
    inj.target = sim::InjectTarget::Register;
    inj.atInstruction = 2;
    inj.bit = 0;
    auto result = sim::runWithInjection(cpu, rng, inj);
    EXPECT_TRUE(inj.applied);
    EXPECT_TRUE(result.halted()) << result.message;
    EXPECT_GE(cpu.stats().instructions, 4u);
    EXPECT_FALSE(sim::describeInjection(inj).empty());
}

TEST(FaultInject, InjectionPastEndOfRunIsNotApplied)
{
    sim::Cpu cpu;
    cpu.load(assembleOrDie(R"(
main:   halt
)"));
    Rng rng(3);
    sim::Injection inj;
    inj.target = sim::InjectTarget::Register;
    inj.atInstruction = 50; // beyond the program's lifetime
    inj.bit = 0;
    auto result = sim::runWithInjection(cpu, rng, inj);
    EXPECT_TRUE(result.halted());
    EXPECT_FALSE(inj.applied);
}

TEST(FaultInject, DescribeNamesEveryTarget)
{
    for (auto target : {sim::InjectTarget::Register,
                        sim::InjectTarget::Memory,
                        sim::InjectTarget::Fetch}) {
        sim::Injection inj;
        inj.target = target;
        inj.bit = 3;
        EXPECT_FALSE(sim::describeInjection(inj).empty());
    }
}

void
expectRowsEq(const std::vector<core::FaultCampaignRow> &a,
             const std::vector<core::FaultCampaignRow> &b,
             const std::string &what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name) << what;
        EXPECT_EQ(a[i].baselineInsts, b[i].baselineInsts) << what;
        EXPECT_EQ(a[i].checkpoints, b[i].checkpoints)
            << what << " " << a[i].name;
        EXPECT_EQ(a[i].replayedInsts, b[i].replayedInsts)
            << what << " " << a[i].name;
        for (unsigned c = 0; c < core::NumFaultOutcomes; ++c) {
            EXPECT_EQ(a[i].byOutcome[c], b[i].byOutcome[c])
                << what << " " << a[i].name << " outcome " << c;
            EXPECT_EQ(a[i].recovered[c], b[i].recovered[c])
                << what << " " << a[i].name << " recovered " << c;
        }
    }
}

TEST(Recovery, CampaignDeterministicAcrossJobsAndModes)
{
    core::RecoveryOptions recovery;
    recovery.enabled = true;
    recovery.checkpointInterval = 500;
    const auto serial_flat =
        core::faultCampaign(3, 2026, 1, false, recovery);
    expectRowsEq(serial_flat,
                 core::faultCampaign(3, 2026, 4, false, recovery),
                 "jobs=4 flat");
    expectRowsEq(serial_flat,
                 core::faultCampaign(3, 2026, 1, true, recovery),
                 "jobs=1 streaming");
    expectRowsEq(serial_flat,
                 core::faultCampaign(3, 2026, 4, true, recovery),
                 "jobs=4 streaming");
}

TEST(Recovery, BaseClassTalliesUnchangedByRecovery)
{
    // Pausing at checkpoints and re-running after detection must not
    // perturb the faulted run's own outcome: the four base classes
    // match the plain campaign for the same seed, run for run.
    const auto plain = core::faultCampaign(4, 77);
    core::RecoveryOptions recovery;
    recovery.enabled = true;
    recovery.checkpointInterval = 300;
    const auto recovered = core::faultCampaign(4, 77, 2, true, recovery);
    ASSERT_EQ(plain.size(), recovered.size());
    for (size_t i = 0; i < plain.size(); ++i)
        for (unsigned c = 0; c < core::NumFaultOutcomes; ++c)
            EXPECT_EQ(plain[i].byOutcome[c], recovered[i].byOutcome[c])
                << plain[i].name << " outcome " << c;
}

TEST(Recovery, OnlyDetectedClassesRecoverAndWithinBounds)
{
    core::RecoveryOptions recovery;
    recovery.enabled = true;
    recovery.checkpointInterval = 400;
    for (const auto &row : core::faultCampaign(5, 1234, 2, true,
                                               recovery)) {
        EXPECT_EQ(row.recoveredCount(core::FaultOutcome::Masked), 0u)
            << row.name;
        EXPECT_EQ(row.recoveredCount(core::FaultOutcome::Sdc), 0u)
            << row.name;
        EXPECT_LE(row.recoveredCount(core::FaultOutcome::DetectedTrap),
                  row.count(core::FaultOutcome::DetectedTrap))
            << row.name;
        EXPECT_LE(row.recoveredCount(core::FaultOutcome::WatchdogHang),
                  row.count(core::FaultOutcome::WatchdogHang))
            << row.name;
        EXPECT_GT(row.checkpoints, 0u) << row.name;
    }
}

TEST(Recovery, NoRecoveryFieldsWhenDisabled)
{
    for (const auto &row : core::faultCampaign(2, 99)) {
        EXPECT_EQ(row.recoveredTotal(), 0u) << row.name;
        EXPECT_EQ(row.checkpoints, 0u) << row.name;
        EXPECT_EQ(row.replayedInsts, 0u) << row.name;
    }
}

TEST(Recovery, SweepAggregatesAreConsistent)
{
    const auto rows = core::recoverySweep({300, 3000}, 2, 7, 2);
    ASSERT_EQ(rows.size(), 2u);
    for (const auto &row : rows) {
        EXPECT_GT(row.injections, 0u);
        EXPECT_LE(row.recovered, row.detected);
        EXPECT_GE(row.checkpoints, row.injections / 2) << "interval "
            << row.interval; // every run of nontrivial length snapshots
    }
    // Smaller interval => strictly more checkpoints taken.
    EXPECT_GT(rows[0].checkpoints, rows[1].checkpoints);
}

} // namespace
