/**
 * @file
 * Fault-injection tests: deterministic replay of campaign rows,
 * outcome completeness, transience of fetch-word flips, and bounds on
 * drawn injections.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "core/experiments.hh"
#include "sim/cpu.hh"
#include "sim/faultinject.hh"
#include "support/rng.hh"
#include "workloads/workload.hh"

namespace {

using namespace risc1;
using assembler::assembleOrDie;

TEST(FaultInject, CampaignIsDeterministicForFixedSeed)
{
    auto first = core::faultCampaign(5, 1981);
    auto second = core::faultCampaign(5, 1981);
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].name, second[i].name);
        EXPECT_EQ(first[i].baselineInsts, second[i].baselineInsts);
        for (unsigned c = 0; c < core::NumFaultOutcomes; ++c)
            EXPECT_EQ(first[i].byOutcome[c], second[i].byOutcome[c])
                << first[i].name << " outcome " << c;
    }
}

TEST(FaultInject, EveryRunIsClassified)
{
    for (const auto &row : core::faultCampaign(8, 7)) {
        unsigned sum = 0;
        for (unsigned c = 0; c < core::NumFaultOutcomes; ++c)
            sum += row.byOutcome[c];
        EXPECT_EQ(sum, row.injections) << row.name;
    }
}

TEST(FaultInject, DifferentSeedsDrawDifferentInjections)
{
    Rng a(1), b(2);
    bool differ = false;
    for (int i = 0; i < 8 && !differ; ++i) {
        sim::Injection x = sim::drawInjection(a, 1000);
        sim::Injection y = sim::drawInjection(b, 1000);
        differ = x.target != y.target || x.bit != y.bit ||
                 x.atInstruction != y.atInstruction;
    }
    EXPECT_TRUE(differ);
}

TEST(FaultInject, DrawnInjectionsAreInBounds)
{
    Rng rng(42);
    for (int i = 0; i < 200; ++i) {
        sim::Injection inj = sim::drawInjection(rng, 1234);
        EXPECT_LT(inj.bit, 32u);
        EXPECT_LT(inj.atInstruction, 1234u);
    }
}

TEST(FaultInject, FetchFlipIsTransient)
{
    // Corrupting the fetched word must not alter the stored program:
    // flip the whole opcode field of the first instruction to zero so
    // decode faults, then check memory still holds the original image.
    sim::Cpu cpu;
    cpu.load(assembleOrDie(R"(
main:   mov   7, r16
        halt
)"));
    const uint32_t entry = cpu.pc();
    const uint32_t original = cpu.memory().peek32(entry);
    ASSERT_NE(original, 0u);

    cpu.corruptNextFetch(original); // word ^ original == 0 → illegal
    auto result = cpu.run();
    EXPECT_EQ(result.reason, sim::StopReason::Fault);
    EXPECT_EQ(result.faultCause, isa::TrapCause::IllegalOpcode);
    EXPECT_EQ(cpu.memory().peek32(entry), original);
}

TEST(FaultInject, FetchCorruptionOnlyHitsOneFetch)
{
    // A flip that turns `mov 7, r16` into a different-but-legal word
    // would run on; here we flip a bit that keeps the opcode legal by
    // flipping the immediate instead, and the program must still halt.
    sim::Cpu cpu;
    cpu.load(assembleOrDie(R"(
main:   mov   7, r16
        stl   r16, (r0)800
        halt
)"));
    cpu.corruptNextFetch(1u); // flip bit 0 of the first word
    auto result = cpu.run();
    if (result.halted()) {
        // The corrupted immediate (7^1 = 6) reached r16; the stored
        // program was untouched, so a re-run gives the true value.
        EXPECT_EQ(cpu.memory().peek32(800), 6u);
        sim::Cpu again;
        again.load(assembleOrDie(R"(
main:   mov   7, r16
        stl   r16, (r0)800
        halt
)"));
        ASSERT_TRUE(again.run().halted());
        EXPECT_EQ(again.memory().peek32(800), 7u);
    }
}

TEST(FaultInject, RegisterInjectionFlipsExactlyOneBit)
{
    sim::Cpu cpu;
    cpu.load(assembleOrDie(R"(
main:   b     main
)"));
    Rng rng(99);
    sim::Injection inj;
    inj.target = sim::InjectTarget::Register;
    inj.atInstruction = 0;
    inj.bit = 5;
    sim::applyInjection(cpu, rng, inj);
    EXPECT_TRUE(inj.applied);
    EXPECT_EQ(inj.oldValue ^ inj.newValue, 1u << 5);
    EXPECT_EQ(cpu.regfile().readPhys(inj.physReg), inj.newValue);
}

TEST(FaultInject, MemoryInjectionFlipsATouchedWord)
{
    sim::Cpu cpu;
    cpu.load(assembleOrDie(R"(
main:   b     main
)"));
    Rng rng(7);
    sim::Injection inj;
    inj.target = sim::InjectTarget::Memory;
    inj.atInstruction = 0;
    inj.bit = 12;
    sim::applyInjection(cpu, rng, inj);
    EXPECT_TRUE(inj.applied);
    EXPECT_EQ(inj.oldValue ^ inj.newValue, 1u << 12);
    EXPECT_EQ(cpu.memory().peek32(inj.memAddr), inj.newValue);
    EXPECT_EQ(inj.memAddr % 4, 0u);
}

TEST(FaultInject, RunWithInjectionPausesAppliesAndFinishes)
{
    sim::Cpu cpu;
    cpu.load(assembleOrDie(R"(
main:   mov   1, r16
        mov   2, r16
        mov   3, r16
        halt
)"));
    Rng rng(3);
    sim::Injection inj;
    inj.target = sim::InjectTarget::Register;
    inj.atInstruction = 2;
    inj.bit = 0;
    auto result = sim::runWithInjection(cpu, rng, inj);
    EXPECT_TRUE(inj.applied);
    EXPECT_TRUE(result.halted()) << result.message;
    EXPECT_GE(cpu.stats().instructions, 4u);
    EXPECT_FALSE(sim::describeInjection(inj).empty());
}

TEST(FaultInject, InjectionPastEndOfRunIsNotApplied)
{
    sim::Cpu cpu;
    cpu.load(assembleOrDie(R"(
main:   halt
)"));
    Rng rng(3);
    sim::Injection inj;
    inj.target = sim::InjectTarget::Register;
    inj.atInstruction = 50; // beyond the program's lifetime
    inj.bit = 0;
    auto result = sim::runWithInjection(cpu, rng, inj);
    EXPECT_TRUE(result.halted());
    EXPECT_FALSE(inj.applied);
}

TEST(FaultInject, DescribeNamesEveryTarget)
{
    for (auto target : {sim::InjectTarget::Register,
                        sim::InjectTarget::Memory,
                        sim::InjectTarget::Fetch}) {
        sim::Injection inj;
        inj.target = target;
        inj.bit = 3;
        EXPECT_FALSE(sim::describeInjection(inj).empty());
    }
}

} // namespace
