/**
 * @file
 * ISA-level tests: condition evaluation, the 31-entry opcode table,
 * register names/aliases, window geometry invariants, encode/decode
 * round trips, and the disassembler.
 */

#include <gtest/gtest.h>

#include "isa/condition.hh"
#include "isa/disasm.hh"
#include "isa/instruction.hh"
#include "isa/opcode.hh"
#include "isa/registers.hh"
#include "support/rng.hh"

namespace {

using namespace risc1;
using namespace risc1::isa;

// ---- conditions -----------------------------------------------------------

TEST(Cond, ReferenceSemantics)
{
    Flags f;
    EXPECT_TRUE(condHolds(Cond::Alw, f));
    EXPECT_FALSE(condHolds(Cond::Nev, f));

    f = Flags{.z = true, .n = false, .v = false, .c = true}; // a == b
    EXPECT_TRUE(condHolds(Cond::Eq, f));
    EXPECT_TRUE(condHolds(Cond::Le, f));
    EXPECT_TRUE(condHolds(Cond::Ge, f));
    EXPECT_TRUE(condHolds(Cond::Los, f));
    EXPECT_TRUE(condHolds(Cond::His, f));
    EXPECT_FALSE(condHolds(Cond::Ne, f));
    EXPECT_FALSE(condHolds(Cond::Lt, f));
    EXPECT_FALSE(condHolds(Cond::Hi, f));

    f = Flags{.z = false, .n = true, .v = false, .c = false}; // a < b
    EXPECT_TRUE(condHolds(Cond::Lt, f));
    EXPECT_TRUE(condHolds(Cond::Le, f));
    EXPECT_TRUE(condHolds(Cond::Lo, f));
    EXPECT_TRUE(condHolds(Cond::Mi, f));
    EXPECT_FALSE(condHolds(Cond::Gt, f));
    EXPECT_FALSE(condHolds(Cond::His, f));
}

/** Property: a condition and its negation partition every flag state. */
class CondNegation : public ::testing::TestWithParam<unsigned>
{};

TEST_P(CondNegation, PartitionsFlagSpace)
{
    const auto cond = static_cast<Cond>(GetParam());
    for (unsigned bits = 0; bits < 16; ++bits) {
        Flags f{.z = (bits & 1) != 0,
                .n = (bits & 2) != 0,
                .v = (bits & 4) != 0,
                .c = (bits & 8) != 0};
        EXPECT_NE(condHolds(cond, f), condHolds(condNegate(cond), f))
            << condName(cond) << " bits=" << bits;
    }
}

INSTANTIATE_TEST_SUITE_P(AllConds, CondNegation,
                         ::testing::Range(0u, 16u));

TEST(Cond, NamesRoundTrip)
{
    for (unsigned i = 0; i < NumConds; ++i) {
        const auto cond = static_cast<Cond>(i);
        auto parsed = condFromName(condName(cond));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, cond);
    }
    EXPECT_FALSE(condFromName("xx").has_value());
}

// ---- opcode table -----------------------------------------------------------

TEST(OpcodeTable, HasExactlyThirtyOne)
{
    unsigned count = 0;
    opTable(count);
    EXPECT_EQ(count, 31u);
    EXPECT_EQ(count, NumOpcodes);
}

TEST(OpcodeTable, MnemonicLookupIsTotalAndUnique)
{
    unsigned count = 0;
    const OpInfo *ops = opTable(count);
    for (unsigned i = 0; i < count; ++i) {
        const OpInfo *found = opInfoByMnemonic(ops[i].mnemonic);
        ASSERT_NE(found, nullptr) << ops[i].mnemonic;
        EXPECT_EQ(found->op, ops[i].op);
        for (unsigned j = i + 1; j < count; ++j)
            EXPECT_NE(ops[i].mnemonic, ops[j].mnemonic);
    }
    EXPECT_EQ(opInfoByMnemonic("frobnicate"), nullptr);
}

TEST(OpcodeTable, OnlySccCapableOpsAllowIt)
{
    unsigned count = 0;
    const OpInfo *ops = opTable(count);
    for (unsigned i = 0; i < count; ++i) {
        const bool is_alu = ops[i].opClass == OpClass::Alu;
        EXPECT_EQ(ops[i].mayScc, is_alu) << ops[i].mnemonic;
    }
}

TEST(OpcodeTable, ValidityMatchesTable)
{
    unsigned valid = 0;
    for (unsigned raw = 0; raw < 128; ++raw) {
        if (isValidOpcode(static_cast<uint8_t>(raw)))
            ++valid;
    }
    EXPECT_EQ(valid, NumOpcodes);
}

// ---- registers & window geometry ------------------------------------------------

TEST(Registers, NamesAndAliases)
{
    EXPECT_EQ(regName(0), "r0");
    EXPECT_EQ(regName(31), "r31");
    EXPECT_EQ(regFromName("r17"), 17u);
    EXPECT_EQ(regFromName("R17"), 17u);
    EXPECT_EQ(regFromName("sp"), SpReg);
    EXPECT_EQ(regFromName("ra"), RaReg);
    EXPECT_EQ(regFromName("g3"), 3u);
    EXPECT_EQ(regFromName("out0"), 10u);
    EXPECT_EQ(regFromName("out5"), 15u);
    EXPECT_EQ(regFromName("loc0"), 16u);
    EXPECT_EQ(regFromName("loc9"), 25u);
    EXPECT_EQ(regFromName("in0"), 26u);
    EXPECT_EQ(regFromName("in5"), 31u);
    EXPECT_FALSE(regFromName("r32").has_value());
    EXPECT_FALSE(regFromName("out6").has_value());
    EXPECT_FALSE(regFromName("g10").has_value());
    EXPECT_FALSE(regFromName("zz").has_value());
}

/** Geometry invariants hold for every window count. */
class WindowGeometry : public ::testing::TestWithParam<unsigned>
{};

TEST_P(WindowGeometry, PaperInvariants)
{
    WindowSpec spec;
    spec.numWindows = GetParam();
    const unsigned nwin = spec.numWindows;

    EXPECT_EQ(spec.physCount(), NumGlobals + nwin * RegsPerWindow);

    for (unsigned w = 0; w < nwin; ++w) {
        // Globals map identically in every window.
        for (unsigned r = 0; r < NumGlobals; ++r)
            EXPECT_EQ(spec.physIndex(w, r), r);

        // The defining overlap: HIGH(w) == LOW((w+1) % nwin).
        const unsigned caller = (w + 1) % nwin;
        for (unsigned i = 0; i < OverlapRegs; ++i) {
            EXPECT_EQ(spec.physIndex(w, HighBase + i),
                      spec.physIndex(caller, LowBase + i))
                << "w=" << w << " i=" << i;
        }

        // LOW+LOCAL of a window never collide with each other.
        std::set<unsigned> own;
        for (unsigned r = LowBase; r < HighBase; ++r)
            EXPECT_TRUE(own.insert(spec.physIndex(w, r)).second);

        // Adjacent windows' fresh banks are disjoint.
        for (unsigned r = LowBase; r < HighBase; ++r) {
            for (unsigned r2 = LowBase; r2 < HighBase; ++r2) {
                EXPECT_NE(spec.physIndex(w, r),
                          spec.physIndex((w + 1) % nwin, r2));
            }
        }
    }
}

TEST_P(WindowGeometry, DefaultMatchesPaper138)
{
    WindowSpec spec; // default 8 windows
    EXPECT_EQ(spec.numWindows, 8u);
    EXPECT_EQ(spec.physCount(), 138u);
    (void)GetParam();
}

INSTANTIATE_TEST_SUITE_P(Counts, WindowGeometry,
                         ::testing::Values(2u, 3u, 4u, 6u, 8u, 12u,
                                           16u));

// ---- encode/decode -----------------------------------------------------------------

TEST(Encoding, KnownPatterns)
{
    // add r0, r0, r0 (the NOP) must encode deterministically.
    const uint32_t nop = encode(makeNop());
    DecodeResult dec = decode(nop);
    ASSERT_TRUE(dec.ok);
    EXPECT_TRUE(isNop(dec.inst));

    // Field placement of a representative instruction.
    Instruction inst = makeRI(Opcode::Add, 5, -1, 17, true);
    const uint32_t word = encode(inst);
    EXPECT_EQ(word >> 25, static_cast<uint32_t>(Opcode::Add));
    EXPECT_EQ((word >> 24) & 1, 1u);          // scc
    EXPECT_EQ((word >> 19) & 0x1f, 17u);      // rd
    EXPECT_EQ((word >> 14) & 0x1f, 5u);       // rs1
    EXPECT_EQ((word >> 13) & 1, 1u);          // imm
    EXPECT_EQ(word & 0x1fff, 0x1fffu);        // -1 in 13 bits
}

TEST(Encoding, RejectsIllegalWords)
{
    EXPECT_FALSE(decode(0xffffffffu).ok);           // opcode 0x7f
    EXPECT_FALSE(decode(0).ok);                     // opcode 0
    // scc bit on a load is illegal.
    uint32_t word = encode(makeLoad(Opcode::Ldl, 1, 0, 2));
    word |= 1u << 24;
    EXPECT_FALSE(decode(word).ok);
    // Register s2 field > 31 is illegal.
    word = encode(makeRR(Opcode::Add, 1, 2, 3));
    word |= 0x100; // set a high bit inside s2 with imm=0
    EXPECT_FALSE(decode(word).ok);
}

/** Property: encode(decode(x)) == x over randomized legal instructions. */
class EncodeRoundTrip : public ::testing::TestWithParam<unsigned>
{};

TEST_P(EncodeRoundTrip, RandomizedInstructions)
{
    unsigned count = 0;
    const OpInfo *ops = opTable(count);
    const OpInfo &info = ops[GetParam()];
    Rng rng(GetParam() * 7919 + 13);

    for (int i = 0; i < 300; ++i) {
        Instruction inst;
        inst.op = info.op;
        inst.scc = info.mayScc && rng.chance(1, 2);
        inst.rd = static_cast<uint8_t>(rng.below(32));
        if (info.format == Format::LongImm) {
            inst.imm19 = static_cast<int32_t>(
                rng.range(-(1 << 18), (1 << 18) - 1));
        } else {
            inst.rs1 = static_cast<uint8_t>(rng.below(32));
            inst.imm = rng.chance(1, 2);
            if (inst.imm)
                inst.simm13 =
                    static_cast<int32_t>(rng.range(-4096, 4095));
            else
                inst.rs2 = static_cast<uint8_t>(rng.below(32));
        }
        const uint32_t word = encode(inst);
        DecodeResult dec = decode(word);
        ASSERT_TRUE(dec.ok) << dec.error;
        EXPECT_EQ(dec.inst, inst);
        EXPECT_EQ(encode(dec.inst), word);
    }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, EncodeRoundTrip,
                         ::testing::Range(0u, NumOpcodes));

// ---- disassembler --------------------------------------------------------------------

TEST(Disasm, RepresentativeFormats)
{
    EXPECT_EQ(disassembleWord(encode(makeNop())), "nop");
    EXPECT_EQ(disassemble(makeRR(Opcode::Add, 1, 2, 3)),
              "add      r1, r2, r3");
    EXPECT_EQ(disassemble(makeRI(Opcode::Sub, 4, -7, 5, true)),
              "subs     r4, -7, r5");
    EXPECT_EQ(disassemble(makeLoad(Opcode::Ldl, 2, 8, 9)),
              "ldl      (r2)8, r9");
    EXPECT_EQ(disassemble(makeStore(Opcode::Stb, 7, 3, 1)),
              "stb      r7, (r3)1");
    EXPECT_EQ(disassemble(makeJmp(Cond::Eq, 6, 0)),
              "jmp      eq, (r6)0");
    EXPECT_EQ(disassemble(makeRet(25, 8)), "ret      (r25)8");
    EXPECT_EQ(disassemble(makeLdhi(4, 0x12345)),
              "ldhi     r4, 0x12345");
}

TEST(Disasm, RelativeTargetsShowAbsoluteAddress)
{
    const std::string text = disassemble(makeJmpr(Cond::Alw, 16), 0x1000);
    EXPECT_NE(text.find("0x00001010"), std::string::npos);
    const std::string call = disassemble(makeCallr(25, -32), 0x2000);
    EXPECT_NE(call.find("0x00001fe0"), std::string::npos);
}

TEST(Disasm, IllegalWordsRenderAsData)
{
    EXPECT_EQ(disassembleWord(0xffffffffu), ".word    0xffffffff");
}

} // namespace
