/**
 * @file
 * Object-file round-trip tests: save/load identity, on-disk I/O,
 * corruption rejection, and execution equivalence of reloaded images.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "asm/assembler.hh"
#include "asm/objfile.hh"
#include "sim/cpu.hh"
#include "support/rng.hh"
#include "workloads/workload.hh"

namespace {

using namespace risc1;
using namespace risc1::assembler;

Program
sampleProgram()
{
    return assembleOrDie(R"(
        .org  0x1000
_start: mov   7, r16
        stl   r16, (r0)256
        halt
        .org  0x3000
tbl:    .word 1, 2, 3
msg:    .asciz "hello"
)");
}

TEST(ObjFile, RoundTripPreservesEverything)
{
    const Program original = sampleProgram();
    LoadResult loaded = loadObject(saveObject(original));
    ASSERT_TRUE(loaded.ok) << loaded.error;

    EXPECT_EQ(loaded.program.entry, original.entry);
    EXPECT_EQ(loaded.program.instructionCount,
              original.instructionCount);
    EXPECT_EQ(loaded.program.symbols, original.symbols);
    ASSERT_EQ(loaded.program.segments.size(),
              original.segments.size());
    for (size_t i = 0; i < original.segments.size(); ++i) {
        EXPECT_EQ(loaded.program.segments[i].base,
                  original.segments[i].base);
        EXPECT_EQ(loaded.program.segments[i].bytes,
                  original.segments[i].bytes);
    }
}

TEST(ObjFile, ReloadedImageExecutesIdentically)
{
    const auto *wl = workloads::findWorkload("fibonacci");
    ASSERT_NE(wl, nullptr);
    const Program original = workloads::buildRisc(*wl, wl->defaultScale);
    LoadResult loaded = loadObject(saveObject(original));
    ASSERT_TRUE(loaded.ok);

    sim::Cpu a, b;
    a.load(original);
    b.load(loaded.program);
    auto ra = a.run();
    auto rb = b.run();
    ASSERT_TRUE(ra.halted());
    ASSERT_TRUE(rb.halted());
    EXPECT_EQ(ra.instructions, rb.instructions);
    EXPECT_EQ(a.memory().peek32(workloads::ResultAddr),
              b.memory().peek32(workloads::ResultAddr));
}

TEST(ObjFile, DiskRoundTrip)
{
    const Program original = sampleProgram();
    const std::string path = "/tmp/risc1_objfile_test.r1o";
    writeObjectFile(original, path);
    Program reloaded = readObjectFile(path);
    EXPECT_EQ(reloaded.entry, original.entry);
    EXPECT_EQ(reloaded.symbols, original.symbols);
    std::remove(path.c_str());
}

TEST(ObjFile, RejectsGarbageAndTruncation)
{
    EXPECT_FALSE(loadObject({}).ok);
    EXPECT_FALSE(loadObject({1, 2, 3, 4}).ok);

    std::vector<uint8_t> good = saveObject(sampleProgram());
    // Wrong magic.
    std::vector<uint8_t> bad = good;
    bad[0] ^= 0xff;
    EXPECT_FALSE(loadObject(bad).ok);
    // Every truncation point must be rejected, never crash.
    for (size_t cut = 0; cut < good.size(); cut += 7) {
        std::vector<uint8_t> trunc(good.begin(),
                                   good.begin() +
                                       static_cast<long>(cut));
        EXPECT_FALSE(loadObject(trunc).ok) << cut;
    }
}

TEST(ObjFile, FuzzedHeadersNeverCrash)
{
    Rng rng(0xfeed);
    std::vector<uint8_t> good = saveObject(sampleProgram());
    for (int i = 0; i < 500; ++i) {
        std::vector<uint8_t> mutated = good;
        const size_t hits = 1 + rng.below(8);
        for (size_t h = 0; h < hits; ++h)
            mutated[rng.below(mutated.size())] ^=
                static_cast<uint8_t>(1 + rng.below(255));
        LoadResult result = loadObject(mutated);
        if (!result.ok) {
            EXPECT_FALSE(result.error.empty());
        }
    }
}

} // namespace
