/**
 * @file
 * Integration tests over the experiment drivers: each must reproduce
 * the *shape* of the paper's corresponding table or figure — who wins,
 * by roughly what factor, where the curve bends. These are the
 * acceptance tests of the reproduction (see EXPERIMENTS.md).
 */

#include <gtest/gtest.h>

#include "core/calltrace.hh"
#include "core/experiments.hh"

namespace {

using namespace risc1;
using namespace risc1::core;

TEST(E1_IsaTable, ListsAllThirtyOneInstructions)
{
    const std::string table = isaTable();
    EXPECT_NE(table.find("31 instructions"), std::string::npos);
    for (const char *mn : {"add", "ldhi", "callr", "ret", "stb",
                           "getpsw", "jmpr"})
        EXPECT_NE(table.find(mn), std::string::npos) << mn;
}

TEST(E2_WindowGeometry, ReportsPaperConfiguration)
{
    const std::string report = windowGeometryReport(8);
    EXPECT_NE(report.find("138 physical registers"), std::string::npos);
    EXPECT_NE(report.find("8 windows"), std::string::npos);
}

TEST(E3_CallOverhead, WindowsBeatStackFramesByAnOrderOfMagnitude)
{
    const auto rows = callOverhead(4, 500);
    ASSERT_EQ(rows.size(), 5u);
    for (const CallOverheadRow &row : rows) {
        // RISC I: a few cycles, no data-memory traffic.
        EXPECT_LE(row.riscCyclesPerCall, 16.0) << row.nargs;
        EXPECT_EQ(row.riscMemPerCall, 0.0) << row.nargs;
        // vax80: tens of cycles and real stack traffic.
        EXPECT_GE(row.vaxCyclesPerCall, 40.0) << row.nargs;
        EXPECT_GE(row.vaxMemPerCall, 8.0) << row.nargs;
        EXPECT_GE(row.vaxCyclesPerCall / row.riscCyclesPerCall, 5.0)
            << row.nargs;
    }
    // Cost grows with argument count on both machines.
    EXPECT_GT(rows.back().vaxCyclesPerCall, rows.front().vaxCyclesPerCall);
    EXPECT_GT(rows.back().riscCyclesPerCall,
              rows.front().riscCyclesPerCall);
}

TEST(E4_CodeSize, RiscCodeIsLargerButBounded)
{
    const auto rows = codeSize();
    ASSERT_EQ(rows.size(), workloads::allWorkloads().size());
    double sum = 0;
    for (const CodeSizeRow &row : rows) {
        // The paper's band: RISC I code is bigger than the CISC's but
        // by less than ~2x (they report <= ~1.5x vs VAX on average).
        EXPECT_GE(row.riscOverVax, 0.8) << row.name;
        EXPECT_LE(row.riscOverVax, 2.5) << row.name;
        sum += row.riscOverVax;
    }
    const double avg = sum / static_cast<double>(rows.size());
    EXPECT_GE(avg, 1.0);
    EXPECT_LE(avg, 1.8);
}

TEST(E5_ExecTime, RiscWinsExceptOnHardwareMultiply)
{
    const auto rows = execTime();
    unsigned wins = 0;
    for (const ExecTimeRow &row : rows) {
        EXPECT_TRUE(row.resultsMatch) << row.name;
        if (row.speedup > 1.0)
            ++wins;
        if (row.name == "matmul" || row.name == "gcd") {
            // The honest losses: vax80 multiplies/divides in
            // microcode, RISC I in software subroutines (and gcd's
            // triple-nested calls spill windows on top).
            EXPECT_LT(row.speedup, 1.2) << row.name;
        }
        if (row.name == "hanoi" || row.name == "fibonacci" ||
            row.name == "queens") {
            // Call-dominated programs show the window advantage most:
            // the paper's 2-4x band.
            EXPECT_GE(row.speedup, 2.0) << row.name;
            EXPECT_LE(row.speedup, 8.0) << row.name;
        }
    }
    // RISC I wins the suite at large (all but the software-arithmetic
    // programs).
    EXPECT_GE(wins, rows.size() - 2);
}

TEST(E6_WindowSweep, OverflowFallsMonotonicallyWithWindows)
{
    const auto rows = windowSweep({2, 4, 8, 16});
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_DOUBLE_EQ(rows[0].overflowPct, 100.0); // 2 windows: every call
    for (size_t i = 1; i < rows.size(); ++i) {
        EXPECT_LT(rows[i].overflowPct, rows[i - 1].overflowPct);
        EXPECT_LT(rows[i].cycles, rows[i - 1].cycles);
    }
}

TEST(E6_SyntheticTrace, EightWindowsCatchAlmostAllCalls)
{
    const auto rows = syntheticWindowSweep({2, 4, 6, 8, 12});
    ASSERT_EQ(rows.size(), 5u);
    EXPECT_DOUBLE_EQ(rows[0].overflowPct, 100.0);
    for (size_t i = 1; i < rows.size(); ++i)
        EXPECT_LE(rows[i].overflowPct, rows[i - 1].overflowPct);
    // The paper's headline: ~1% overflow at 8 windows on C-like traces.
    EXPECT_LE(rows[3].overflowPct, 2.0);
    EXPECT_GT(rows[3].overflowPct, 0.0);
    // The same trace replayed with more windows keeps the same calls.
    EXPECT_EQ(rows[0].calls, rows[4].calls);
}

TEST(E7_MemTraffic, CiscMovesMoreDataWhereverCallsHappen)
{
    const auto rows = memTraffic();
    for (const MemTrafficRow &row : rows) {
        // gcd is the documented exception: its software division runs
        // three call levels deep, so RISC I's own window spills exceed
        // vax80's CALLS traffic there.
        if (row.name == "gcd")
            continue;
        // The load/store-architecture floor: vax80 never does *less*
        // data traffic than RISC I on the same algorithm...
        EXPECT_GE(row.vaxDataAccesses, row.riscDataAccesses) << row.name;
        // ...and the register windows crush it on recursive programs.
        const auto *wl = workloads::findWorkload(row.name);
        ASSERT_NE(wl, nullptr);
        if (wl->recursive) {
            EXPECT_GE(row.dataRatio, 1.3) << row.name;
        }
    }
}

TEST(E8_InstrMix, AluDominatesAndClassesAreComplete)
{
    const auto rows = instrMix();
    for (const InstrMixRow &row : rows) {
        const double sum = row.aluPct + row.loadPct + row.storePct +
                           row.branchPct + row.callRetPct + row.miscPct;
        EXPECT_NEAR(sum, 100.0, 0.1) << row.name;
        EXPECT_GT(row.aluPct, 25.0) << row.name;
        EXPECT_LT(row.loadPct + row.storePct, 60.0) << row.name;
    }
}

TEST(E9_DelaySlots, FillingSavesCyclesWithoutChangingResults)
{
    const auto rows = delaySlots();
    double filled_total = 0;
    for (const DelaySlotRow &row : rows) {
        EXPECT_LE(row.cyclesFilled, row.cyclesUnfilled) << row.name;
        EXPECT_LE(row.filled, row.slots) << row.name;
        filled_total += row.filled;
    }
    EXPECT_GT(filled_total, 0);
}

TEST(A1_WindowAblation, RemovingWindowsHurtsRecursivePrograms)
{
    const auto rows = windowAblation();
    for (const WindowAblationRow &row : rows) {
        EXPECT_GT(row.slowdown, 1.1) << row.name;
        EXPECT_GT(row.extraMemAccesses, 0u) << row.name;
    }
}

TEST(A2_Immediates, ThirteenBitFieldCoversAlmostEverything)
{
    const auto rows = immediateUsage();
    for (const ImmediateRow &row : rows) {
        // LDHI pairs are the rare case, as the paper's field-size
        // choice predicts.
        EXPECT_LE(row.ldhiPct, 25.0) << row.name;
        EXPECT_GT(row.shortImmInsts, 0u) << row.name;
    }
}

TEST(Tables, RenderersProduceRows)
{
    EXPECT_FALSE(codeSizeTable(codeSize()).empty());
    EXPECT_FALSE(windowSweepTable(windowSweep({2, 8})).empty());
    EXPECT_FALSE(
        syntheticWindowSweepTable(syntheticWindowSweep({8})).empty());
}

} // namespace
