/**
 * @file
 * The predecode fast path and the parallel experiment runner.
 *
 * Differential tests pin the central claim of both features: they are
 * pure optimisations. Predecode on vs off must produce identical
 * pc/instruction/stats streams over the whole suite (including under
 * self-modifying stores), and any --jobs value must produce
 * byte-identical experiment tables.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>

#include "asm/assembler.hh"
#include "core/experiments.hh"
#include "core/parallel.hh"
#include "sim/cpu.hh"
#include "sim/decode.hh"
#include "support/logging.hh"
#include "support/threadpool.hh"
#include "vax/cpu.hh"
#include "vax/predecode.hh"
#include "workloads/workload.hh"

namespace {

using namespace risc1;

void
expectStatsEq(const sim::SimStats &a, const sim::SimStats &b,
              const std::string &what)
{
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.perOpcode, b.perOpcode) << what;
    EXPECT_EQ(a.perClass, b.perClass) << what;
    EXPECT_EQ(a.branches, b.branches) << what;
    EXPECT_EQ(a.branchesTaken, b.branchesTaken) << what;
    EXPECT_EQ(a.nopsExecuted, b.nopsExecuted) << what;
    EXPECT_EQ(a.calls, b.calls) << what;
    EXPECT_EQ(a.returns, b.returns) << what;
    EXPECT_EQ(a.windowOverflows, b.windowOverflows) << what;
    EXPECT_EQ(a.windowUnderflows, b.windowUnderflows) << what;
    EXPECT_EQ(a.spillWords, b.spillWords) << what;
    EXPECT_EQ(a.refillWords, b.refillWords) << what;
    EXPECT_EQ(a.memory.instFetches, b.memory.instFetches) << what;
    EXPECT_EQ(a.memory.dataReads, b.memory.dataReads) << what;
    EXPECT_EQ(a.memory.dataWrites, b.memory.dataWrites) << what;
}

void
expectVaxStatsEq(const vax::VaxStats &a, const vax::VaxStats &b,
                 const std::string &what)
{
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.perOpcode, b.perOpcode) << what;
    EXPECT_EQ(a.istreamBytes, b.istreamBytes) << what;
    EXPECT_EQ(a.branches, b.branches) << what;
    EXPECT_EQ(a.branchesTaken, b.branchesTaken) << what;
    EXPECT_EQ(a.calls, b.calls) << what;
    EXPECT_EQ(a.returns, b.returns) << what;
    EXPECT_EQ(a.savedRegs, b.savedRegs) << what;
    EXPECT_EQ(a.restoredRegs, b.restoredRegs) << what;
    EXPECT_EQ(a.memory.instFetches, b.memory.instFetches) << what;
    EXPECT_EQ(a.memory.dataReads, b.memory.dataReads) << what;
    EXPECT_EQ(a.memory.dataWrites, b.memory.dataWrites) << what;
}

/** A valid DecodedOp for cache unit tests. */
sim::DecodedOp
someOp()
{
    const assembler::Program p =
        assembler::assembleOrDie("_start: add r1, r2, r3\n halt\n");
    const isa::DecodeResult dec = isa::decode(*p.wordAt(p.entry));
    EXPECT_TRUE(dec.ok);
    return sim::makeDecodedOp(dec.inst);
}

// ---- DecodedCache unit behaviour ----------------------------------------

TEST(DecodedCache, InsertLookupAndSlotInvalidation)
{
    sim::DecodedCache cache;
    const sim::DecodedOp op = someOp();

    EXPECT_EQ(cache.lookup(0x1000), nullptr);
    cache.insert(0x1000, op);
    cache.insert(0x1004, op);
    ASSERT_NE(cache.lookup(0x1000), nullptr);
    ASSERT_NE(cache.lookup(0x1004), nullptr);
    EXPECT_EQ(cache.residentLines(), 1u);

    // Misaligned addresses must miss (the slow path raises the fault).
    EXPECT_EQ(cache.lookup(0x1002), nullptr);

    // A write invalidates exactly the slots it overlaps.
    cache.onMemoryWrite(0x1000, 4);
    EXPECT_EQ(cache.lookup(0x1000), nullptr);
    EXPECT_NE(cache.lookup(0x1004), nullptr);

    // A byte write in the middle of a word kills that word's slot.
    cache.onMemoryWrite(0x1006, 1);
    EXPECT_EQ(cache.lookup(0x1004), nullptr);

    cache.insert(0x1000, op);
    // Writes far outside the cached text band are filtered out.
    cache.onMemoryWrite(0x800000, 4);
    EXPECT_NE(cache.lookup(0x1000), nullptr);

    // A straddling write from the previous page reaches the first slot.
    cache.onMemoryWrite(0x0ffe, 4);
    EXPECT_EQ(cache.lookup(0x1000), nullptr);

    cache.insert(0x1000, op);
    cache.invalidateAll();
    EXPECT_EQ(cache.lookup(0x1000), nullptr);
    EXPECT_EQ(cache.residentLines(), 0u);
}

TEST(VaxDecodeCache, RecordExactInvalidation)
{
    vax::VaxDecodeCache cache;
    vax::VaxDecoded rec;
    rec.op = vax::VaxOp::Nop;
    rec.length = 5; // covers [0x2000, 0x2005)

    cache.insert(0x2000, rec);
    ASSERT_NE(cache.lookup(0x2000), nullptr);
    EXPECT_EQ(cache.residentRecords(), 1u);

    // A write past the record's last byte leaves it alone...
    cache.onMemoryWrite(0x2005, 4);
    EXPECT_NE(cache.lookup(0x2000), nullptr);
    // ...as does data traffic far outside the text band...
    cache.onMemoryWrite(0x900000, 4);
    EXPECT_NE(cache.lookup(0x2000), nullptr);
    // ...but any overlapping byte drops it.
    cache.onMemoryWrite(0x2004, 1);
    EXPECT_EQ(cache.lookup(0x2000), nullptr);
    EXPECT_EQ(cache.residentRecords(), 0u);

    cache.insert(0x2000, rec);
    cache.invalidateAll();
    EXPECT_EQ(cache.residentRecords(), 0u);
}

// ---- Predecode on vs off: differential over the suite -------------------

TEST(Predecode, RiscLockstepPcStream)
{
    const workloads::Workload *wl =
        workloads::findWorkload("fibonacci");
    ASSERT_NE(wl, nullptr);
    const assembler::Program prog =
        workloads::buildRisc(*wl, wl->defaultScale);

    sim::CpuOptions off_opts;
    off_opts.predecode = false;
    sim::Cpu on;  // predecode defaults to on
    sim::Cpu off(off_opts);
    on.load(prog);
    off.load(prog);

    uint64_t guard = 0;
    while (!on.halted() && !off.halted()) {
        ASSERT_EQ(on.pc(), off.pc())
            << "diverged at instruction " << guard;
        on.step();
        off.step();
        ASSERT_LT(++guard, 50'000'000u) << "lockstep did not terminate";
    }
    EXPECT_EQ(on.halted(), off.halted());
    expectStatsEq(on.stats(), off.stats(), wl->name);
}

TEST(Predecode, RiscSuiteDifferential)
{
    for (const workloads::Workload &wl : workloads::allWorkloads()) {
        const assembler::Program prog =
            workloads::buildRisc(wl, wl.defaultScale);
        sim::CpuOptions off_opts;
        off_opts.predecode = false;
        sim::Cpu on;
        sim::Cpu off(off_opts);
        on.load(prog);
        off.load(prog);
        const sim::ExecResult ron = on.run();
        const sim::ExecResult roff = off.run();
        EXPECT_EQ(ron.reason, roff.reason) << wl.name;
        EXPECT_EQ(ron.instructions, roff.instructions) << wl.name;
        EXPECT_EQ(ron.cycles, roff.cycles) << wl.name;
        EXPECT_EQ(on.memory().peek32(workloads::ResultAddr),
                  off.memory().peek32(workloads::ResultAddr))
            << wl.name;
        expectStatsEq(on.stats(), off.stats(), wl.name);
    }
}

TEST(Predecode, VaxSuiteDifferential)
{
    for (const workloads::Workload &wl : workloads::allWorkloads()) {
        const vax::VaxProgram prog = wl.buildVax(wl.defaultScale);
        vax::VaxCpuOptions off_opts;
        off_opts.predecode = false;
        vax::VaxCpu on;
        vax::VaxCpu off(off_opts);
        on.load(prog);
        off.load(prog);
        const sim::ExecResult ron = on.run();
        const sim::ExecResult roff = off.run();
        EXPECT_EQ(ron.reason, roff.reason) << wl.name;
        EXPECT_EQ(ron.instructions, roff.instructions) << wl.name;
        EXPECT_EQ(ron.cycles, roff.cycles) << wl.name;
        EXPECT_EQ(on.memory().peek32(workloads::ResultAddr),
                  off.memory().peek32(workloads::ResultAddr))
            << wl.name;
        expectVaxStatsEq(on.stats(), off.stats(), wl.name);
    }
}

TEST(Predecode, SelfModifyingStoreInvalidates)
{
    // Encoding of the replacement instruction: add r17, 100, r17.
    const assembler::Program enc =
        assembler::assembleOrDie("_start: add r17, 100, r17\n halt\n");
    const uint32_t patched = *enc.wordAt(enc.entry);

    // Pass 0 executes `add r17, 1, r17` (predecoding it), then stores
    // the replacement word over it; pass 1 must execute the NEW
    // instruction. Final r17 = 1 + 100 = 101.
    // Low origin keeps `newword` addressable as a (r0)simm13 operand.
    const std::string src = strprintf(R"(
        .equ RESULT, %u
        .org  256
_start: ldl   (r0)newword, r16
        clr   r17
        clr   r18
loop:
patch:  add   r17, 1, r17
        add   r18, 1, r18
        cmp   r18, 2
        bge   done
        stl   r16, (r0)patch
        b     loop
done:   stl   r17, (r0)RESULT
        halt
newword: .word %u
)",
                                      workloads::ResultAddr, patched);

    // No delay-slot filling: keep the store out of branch shadows so
    // the execution order above is exactly what runs.
    assembler::AsmOptions no_fill;
    no_fill.fillDelaySlots = false;
    const assembler::Program prog = assembler::assembleOrDie(src,
                                                             no_fill);

    sim::CpuOptions off_opts;
    off_opts.predecode = false;
    sim::Cpu on;
    sim::Cpu off(off_opts);
    on.load(prog);
    off.load(prog);
    const sim::ExecResult ron = on.run();
    const sim::ExecResult roff = off.run();

    ASSERT_TRUE(ron.halted());
    ASSERT_TRUE(roff.halted());
    // The stale cached `add r17, 1, r17` would produce 2, not 101.
    EXPECT_EQ(on.memory().peek32(workloads::ResultAddr), 101u);
    EXPECT_EQ(off.memory().peek32(workloads::ResultAddr), 101u);
    expectStatsEq(on.stats(), off.stats(), "self-modifying");
}

// ---- ThreadPool / ParallelRunner ----------------------------------------

TEST(Parallel, ThreadPoolRunsEverySubmittedTask)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(4);
        for (int i = 0; i < 1000; ++i)
            pool.submit([&count] { ++count; });
        pool.wait();
        EXPECT_EQ(count.load(), 1000);
    }
}

TEST(Parallel, MapFillsSlotsInIndexOrder)
{
    const core::ParallelRunner runner(4);
    EXPECT_EQ(runner.jobs(), 4u);
    const auto out = runner.map<size_t>(257, [](size_t i) {
        return i * i;
    });
    ASSERT_EQ(out.size(), 257u);
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(Parallel, FirstExceptionPropagates)
{
    const core::ParallelRunner runner(4);
    EXPECT_THROW(runner.run(64,
                            [](size_t i) {
                                if (i == 13)
                                    throw std::runtime_error("boom");
                            }),
                 std::runtime_error);
}

TEST(Parallel, ResolveJobsPrecedence)
{
    EXPECT_EQ(core::resolveJobs(3), 3u);
    ::setenv("RISC1_JOBS", "5", 1);
    EXPECT_EQ(core::resolveJobs(0), 5u);
    EXPECT_EQ(core::resolveJobs(2), 2u); // explicit request wins
    ::unsetenv("RISC1_JOBS");
    EXPECT_GE(core::resolveJobs(0), 1u);
}

// ---- --jobs N must be byte-identical to serial --------------------------

TEST(Parallel, FaultCampaignJobsInvariant)
{
    const auto serial = core::faultCampaign(5, 123, 1);
    const auto parallel = core::faultCampaign(5, 123, 4);
    EXPECT_EQ(core::faultCampaignTable(serial),
              core::faultCampaignTable(parallel));
}

TEST(Parallel, ExecTimeJobsInvariant)
{
    EXPECT_EQ(core::execTimeTable(core::execTime(1)),
              core::execTimeTable(core::execTime(4)));
}

} // namespace
