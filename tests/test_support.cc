/**
 * @file
 * Unit tests of the support substrate: bit utilities, string parsing,
 * formatting, and the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "support/bits.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "support/strings.hh"

namespace {

using namespace risc1;

// ---- bits ----------------------------------------------------------------

TEST(Bits, MaskWidths)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(13), 0x1fffu);
    EXPECT_EQ(mask(32), 0xffffffffu);
    EXPECT_EQ(mask(64), ~uint64_t{0});
}

TEST(Bits, ExtractAndInsert)
{
    EXPECT_EQ(bits(0xdeadbeef, 31, 16), 0xdeadu);
    EXPECT_EQ(bits(0xdeadbeef, 15, 0), 0xbeefu);
    EXPECT_EQ(bits(0xff, 3, 3), 1u);
    EXPECT_TRUE(bit(0x80000000u, 31));
    EXPECT_FALSE(bit(0x7fffffffu, 31));

    uint64_t word = 0;
    word = insertBits(word, 31, 25, 0x12);
    EXPECT_EQ(bits(word, 31, 25), 0x12u);
    word = insertBits(word, 12, 0, 0x1abc);
    EXPECT_EQ(bits(word, 12, 0), 0x1abcu);
    // Oversized field is truncated to the slot.
    word = insertBits(word, 4, 0, 0xfff);
    EXPECT_EQ(bits(word, 4, 0), 0x1fu);
}

/** Property: sext/fitsSigned agree over a sweep of widths and values. */
class SextProperty : public ::testing::TestWithParam<unsigned>
{};

TEST_P(SextProperty, RoundTripsInRangeValues)
{
    const unsigned width = GetParam();
    const int64_t lo = -(int64_t{1} << (width - 1));
    const int64_t hi = (int64_t{1} << (width - 1)) - 1;
    Rng rng(width);
    for (int i = 0; i < 200; ++i) {
        const int64_t value = rng.range(lo, hi);
        EXPECT_TRUE(fitsSigned(value, width));
        EXPECT_EQ(sext(static_cast<uint64_t>(value) & mask(width), width),
                  value);
    }
    EXPECT_FALSE(fitsSigned(hi + 1, width));
    EXPECT_FALSE(fitsSigned(lo - 1, width));
}

INSTANTIATE_TEST_SUITE_P(Widths, SextProperty,
                         ::testing::Values(2u, 5u, 8u, 13u, 16u, 19u,
                                           24u, 32u));

TEST(Bits, FitsUnsigned)
{
    EXPECT_TRUE(fitsUnsigned(0, 1));
    EXPECT_TRUE(fitsUnsigned(8191, 13));
    EXPECT_FALSE(fitsUnsigned(8192, 13));
}

TEST(Bits, Pow2AndRounding)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(4096));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(12));
    EXPECT_EQ(roundUp(13, 4), 16u);
    EXPECT_EQ(roundUp(16, 4), 16u);
}

// ---- strings ---------------------------------------------------------------

TEST(Strings, TrimAndSplit)
{
    EXPECT_EQ(trim("  x y  "), "x y");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim(" \t\n"), "");
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[2], "");
}

TEST(Strings, CaseHelpers)
{
    EXPECT_EQ(toLower("AdD"), "add");
    EXPECT_EQ(toUpper("sub"), "SUB");
    EXPECT_TRUE(iequals("LDHI", "ldhi"));
    EXPECT_FALSE(iequals("ld", "ldl"));
}

TEST(Strings, ParseIntBases)
{
    EXPECT_EQ(parseInt("42"), 42);
    EXPECT_EQ(parseInt("-42"), -42);
    EXPECT_EQ(parseInt("0x1F"), 31);
    EXPECT_EQ(parseInt("0b1010"), 10);
    EXPECT_EQ(parseInt("0o17"), 15);
    EXPECT_EQ(parseInt("'A'"), 65);
    EXPECT_EQ(parseInt("'\\n'"), 10);
    EXPECT_EQ(parseInt("-'a'"), -97);
}

TEST(Strings, ParseIntRejectsMalformed)
{
    EXPECT_FALSE(parseInt("").has_value());
    EXPECT_FALSE(parseInt("12x").has_value());
    EXPECT_FALSE(parseInt("0x").has_value());
    EXPECT_FALSE(parseInt("--3").has_value());
    EXPECT_FALSE(parseInt("'ab'").has_value());
    EXPECT_FALSE(parseInt("99999999999999999999").has_value());
}

// ---- logging -----------------------------------------------------------------

TEST(Logging, StrprintfFormats)
{
    EXPECT_EQ(strprintf("x=%d %s", 5, "y"), "x=5 y");
    EXPECT_EQ(strprintf("%08x", 0x1234u), "00001234");
}

TEST(Logging, FatalThrowsWithMessage)
{
    try {
        fatal("bad %s: %d", "thing", 7);
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_EQ(e.message(), "bad thing: 7");
    }
}

// ---- rng ------------------------------------------------------------------------

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, RangeStaysInBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const int64_t value = rng.range(-5, 17);
        EXPECT_GE(value, -5);
        EXPECT_LE(value, 17);
    }
}

} // namespace
