/**
 * @file
 * Checkpoint/restore tests: a restored machine must continue exactly
 * as the original — including mid-recursion, mid-delay-slot, and with
 * the window save stack in play.
 */

#include <gtest/gtest.h>

#include "sim/cpu.hh"
#include "workloads/workload.hh"

namespace {

using namespace risc1;
using workloads::Workload;

/** Run `cpu` to completion and return (result word, cycles). */
std::pair<uint32_t, uint64_t>
finish(sim::Cpu &cpu)
{
    auto result = cpu.run();
    EXPECT_TRUE(result.halted()) << result.message;
    return {cpu.memory().peek32(workloads::ResultAddr), result.cycles};
}

class SnapshotResume : public ::testing::TestWithParam<Workload>
{};

TEST_P(SnapshotResume, MidRunCheckpointContinuesIdentically)
{
    const Workload &wl = GetParam();
    assembler::Program prog = workloads::buildRisc(wl, wl.defaultScale);

    // Reference: straight run.
    sim::Cpu reference;
    reference.load(prog);
    const auto [ref_result, ref_cycles] = finish(reference);

    // Checkpointed: run 1/3 of the way, snapshot, trash the machine,
    // restore, finish.
    sim::Cpu cpu;
    cpu.load(prog);
    const uint64_t pause = reference.stats().instructions / 3 + 1;
    while (cpu.stats().instructions < pause && !cpu.halted())
        cpu.step();
    const sim::Snapshot snap = cpu.snapshot();

    // Perturb everything the snapshot should shield us from.
    cpu.setReg(16, 0xdeadbeef);
    cpu.memory().poke32(workloads::ResultAddr, 0x55555555);
    cpu.setPc(0x1000);

    cpu.restore(snap);
    const auto [result, cycles] = finish(cpu);

    EXPECT_EQ(result, ref_result) << wl.name;
    EXPECT_EQ(result, wl.expected(wl.defaultScale)) << wl.name;
    EXPECT_EQ(cycles, ref_cycles) << wl.name;
    EXPECT_EQ(cpu.stats().instructions, reference.stats().instructions)
        << wl.name;
    EXPECT_EQ(cpu.stats().windowOverflows,
              reference.stats().windowOverflows)
        << wl.name;
}

INSTANTIATE_TEST_SUITE_P(
    RecursiveSuite, SnapshotResume,
    ::testing::ValuesIn([] {
        std::vector<Workload> picks;
        for (const Workload &wl : workloads::allWorkloads()) {
            if (wl.recursive)
                picks.push_back(wl);
        }
        return picks;
    }()),
    [](const ::testing::TestParamInfo<Workload> &info) {
        return info.param.name;
    });

TEST(Snapshot, CapturesDelaySlotState)
{
    // Snapshot immediately after a taken branch (slot in flight): the
    // restored machine must still execute the slot then the target.
    assembler::Program prog = assembler::assembleOrDie(R"(
_start: b     over
        add   r16, 1, r16     ; slot
        add   r16, 100, r16   ; skipped
over:   add   r16, 10, r16
        stl   r16, (r0)512
        halt
        nop                   ; halt's delay slot (explicit mode)
)",
                                                       [] {
        assembler::AsmOptions opts;
        opts.autoDelaySlots = false;
        return opts;
    }());
    sim::Cpu cpu;
    cpu.load(prog);
    cpu.step(); // the branch executes; slot is next
    const sim::Snapshot snap = cpu.snapshot();

    sim::Cpu other;
    other.load(prog);
    other.restore(snap);
    ASSERT_TRUE(other.run().halted());
    EXPECT_EQ(other.memory().peek32(512), 11u);
}

TEST(Snapshot, RoundTripsIdleState)
{
    sim::Cpu cpu;
    cpu.load(assembler::assembleOrDie("_start: halt\n"));
    const sim::Snapshot snap = cpu.snapshot();
    cpu.setReg(5, 99);
    cpu.restore(snap);
    EXPECT_EQ(cpu.reg(5), 0u);
    EXPECT_EQ(cpu.pc(), 0x1000u);
}

} // namespace
