/**
 * @file
 * Checkpoint/restore tests: a restored machine must continue exactly
 * as the original — including mid-recursion, mid-delay-slot, and with
 * the window save stack in play.
 */

#include <gtest/gtest.h>

#include "sim/cpu.hh"
#include "sim/snapshot.hh"
#include "workloads/workload.hh"

namespace {

using namespace risc1;
using workloads::Workload;

/** Run `cpu` to completion and return (result word, cycles). */
std::pair<uint32_t, uint64_t>
finish(sim::Cpu &cpu)
{
    auto result = cpu.run();
    EXPECT_TRUE(result.halted()) << result.message;
    return {cpu.memory().peek32(workloads::ResultAddr), result.cycles};
}

class SnapshotResume : public ::testing::TestWithParam<Workload>
{};

TEST_P(SnapshotResume, MidRunCheckpointContinuesIdentically)
{
    const Workload &wl = GetParam();
    assembler::Program prog = workloads::buildRisc(wl, wl.defaultScale);

    // Reference: straight run.
    sim::Cpu reference;
    reference.load(prog);
    const auto [ref_result, ref_cycles] = finish(reference);

    // Checkpointed: run 1/3 of the way, snapshot, trash the machine,
    // restore, finish.
    sim::Cpu cpu;
    cpu.load(prog);
    const uint64_t pause = reference.stats().instructions / 3 + 1;
    while (cpu.stats().instructions < pause && !cpu.halted())
        cpu.step();
    const sim::Snapshot snap = cpu.snapshot();

    // Perturb everything the snapshot should shield us from.
    cpu.setReg(16, 0xdeadbeef);
    cpu.memory().poke32(workloads::ResultAddr, 0x55555555);
    cpu.setPc(0x1000);

    cpu.restore(snap);
    const auto [result, cycles] = finish(cpu);

    EXPECT_EQ(result, ref_result) << wl.name;
    EXPECT_EQ(result, wl.expected(wl.defaultScale)) << wl.name;
    EXPECT_EQ(cycles, ref_cycles) << wl.name;
    EXPECT_EQ(cpu.stats().instructions, reference.stats().instructions)
        << wl.name;
    EXPECT_EQ(cpu.stats().windowOverflows,
              reference.stats().windowOverflows)
        << wl.name;
}

INSTANTIATE_TEST_SUITE_P(
    RecursiveSuite, SnapshotResume,
    ::testing::ValuesIn([] {
        std::vector<Workload> picks;
        for (const Workload &wl : workloads::allWorkloads()) {
            if (wl.recursive)
                picks.push_back(wl);
        }
        return picks;
    }()),
    [](const ::testing::TestParamInfo<Workload> &info) {
        return info.param.name;
    });

TEST(Snapshot, CapturesDelaySlotState)
{
    // Snapshot immediately after a taken branch (slot in flight): the
    // restored machine must still execute the slot then the target.
    assembler::Program prog = assembler::assembleOrDie(R"(
_start: b     over
        add   r16, 1, r16     ; slot
        add   r16, 100, r16   ; skipped
over:   add   r16, 10, r16
        stl   r16, (r0)512
        halt
        nop                   ; halt's delay slot (explicit mode)
)",
                                                       [] {
        assembler::AsmOptions opts;
        opts.autoDelaySlots = false;
        return opts;
    }());
    sim::Cpu cpu;
    cpu.load(prog);
    cpu.step(); // the branch executes; slot is next
    const sim::Snapshot snap = cpu.snapshot();

    sim::Cpu other;
    other.load(prog);
    other.restore(snap);
    ASSERT_TRUE(other.run().halted());
    EXPECT_EQ(other.memory().peek32(512), 11u);
}

TEST(Snapshot, RoundTripsIdleState)
{
    sim::Cpu cpu;
    cpu.load(assembler::assembleOrDie("_start: halt\n"));
    const sim::Snapshot snap = cpu.snapshot();
    cpu.setReg(5, 99);
    cpu.restore(snap);
    EXPECT_EQ(cpu.reg(5), 0u);
    EXPECT_EQ(cpu.pc(), 0x1000u);
}

// ---- Mid-run restore on the fast engines --------------------------------
//
// Snapshots taken while fused pairs and superblocks are live must
// restore cleanly: restore() drops all predecoded state, so the
// resumed run stays differentially identical to the interpreter.

sim::CpuOptions
engineOptions(bool superblock)
{
    sim::CpuOptions opts;
    opts.threaded = true;
    opts.fuse = !superblock;
    opts.superblock = superblock;
    return opts;
}

TEST(SnapshotEngines, MidRunRestoreMatchesInterpreterOnFastEngines)
{
    const workloads::Workload *pick = nullptr;
    for (const workloads::Workload &wl : workloads::allWorkloads())
        if (wl.recursive)
            pick = &wl;
    ASSERT_NE(pick, nullptr);
    const assembler::Program prog =
        workloads::buildRisc(*pick, pick->defaultScale);

    sim::CpuOptions interp;
    interp.predecode = false;
    interp.threaded = false;
    sim::Cpu reference(interp);
    reference.load(prog);
    const auto [ref_result, ref_cycles] = finish(reference);

    for (const bool superblock : {false, true}) {
        const std::string what =
            superblock ? "superblock" : "threaded+fuse";
        // Pause at an odd count (mid-block, mid-pair), snapshot, and
        // resume in a *fresh* Cpu of the same engine.
        sim::Cpu cpu(engineOptions(superblock));
        cpu.load(prog);
        const uint64_t pause = reference.stats().instructions / 3 + 7;
        ASSERT_EQ(cpu.runUntil(pause).reason, sim::StopReason::Paused)
            << what;
        const sim::Snapshot snap = cpu.snapshot();

        sim::Cpu resumed(engineOptions(superblock));
        resumed.load(prog);
        // Warm the resumed machine's caches elsewhere in the program
        // first: restore() must demote every live block and fused pair.
        ASSERT_EQ(resumed.runUntil(pause / 2).reason,
                  sim::StopReason::Paused)
            << what;
        resumed.restore(snap);
        const auto [result, cycles] = finish(resumed);
        EXPECT_EQ(result, ref_result) << what;
        EXPECT_EQ(cycles, ref_cycles) << what;
        EXPECT_EQ(resumed.stats().instructions,
                  reference.stats().instructions)
            << what;

        // The paused original must also continue identically.
        const auto [result2, cycles2] = finish(cpu);
        EXPECT_EQ(result2, ref_result) << what;
        EXPECT_EQ(cycles2, ref_cycles) << what;
    }
}

// ---- Serialization -------------------------------------------------------

TEST(SnapshotSerialize, RoundTripsMidRunAcrossEngines)
{
    // Serialize a checkpoint taken on the (default) superblock engine
    // and resume it on the plain interpreter: the config hash covers
    // only architectural fields, so a reproducer captured on any
    // engine replays on any other.
    const workloads::Workload &wl = workloads::allWorkloads().front();
    const assembler::Program prog =
        workloads::buildRisc(wl, wl.defaultScale);

    sim::Cpu fast; // default options: superblock engine
    fast.load(prog);
    ASSERT_EQ(fast.runUntil(1000).reason, sim::StopReason::Paused);
    const std::vector<uint8_t> bytes =
        sim::serializeSnapshot(fast.snapshot(), fast.options());

    sim::CpuOptions interp;
    interp.predecode = false;
    interp.threaded = false;
    ASSERT_EQ(sim::configHash(interp), sim::configHash(fast.options()));
    const sim::Snapshot snap = sim::deserializeSnapshot(bytes, interp);
    sim::Cpu cpu(interp);
    cpu.load(prog);
    cpu.restore(snap);
    EXPECT_EQ(cpu.stats().instructions, 1000u);
    const auto [result, cycles] = finish(cpu);
    EXPECT_EQ(result, wl.expected(wl.defaultScale));

    // And the continuation matches the uninterrupted fast run.
    const auto [fast_result, fast_cycles] = finish(fast);
    EXPECT_EQ(result, fast_result);
    EXPECT_EQ(cycles, fast_cycles);
}

sim::SnapshotError::Kind
deserializeKind(const std::vector<uint8_t> &bytes,
                const sim::CpuOptions &options)
{
    try {
        (void)sim::deserializeSnapshot(bytes, options);
    } catch (const sim::SnapshotError &err) {
        EXPECT_FALSE(std::string(err.what()).empty());
        return err.kind();
    }
    ADD_FAILURE() << "deserialization unexpectedly succeeded";
    return sim::SnapshotError::Kind::Corrupt;
}

class SnapshotNegative : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        cpu_.load(assembler::assembleOrDie(R"(
_start: add  r16, 1, r16
        stl  r16, (r0)512
        halt
)"));
        ASSERT_EQ(cpu_.runUntil(1).reason, sim::StopReason::Paused);
        bytes_ = sim::serializeSnapshot(cpu_.snapshot(), cpu_.options());
    }

    sim::Cpu cpu_;
    std::vector<uint8_t> bytes_;
};

TEST_F(SnapshotNegative, TruncatedStreamsRejected)
{
    using Kind = sim::SnapshotError::Kind;
    for (const size_t len : {size_t{0}, size_t{3}, size_t{9},
                             bytes_.size() / 2, bytes_.size() - 1}) {
        std::vector<uint8_t> cut(bytes_.begin(), bytes_.begin() + len);
        EXPECT_EQ(deserializeKind(cut, cpu_.options()), Kind::Truncated)
            << "length " << len;
    }
}

TEST_F(SnapshotNegative, ForeignMagicRejected)
{
    bytes_[0] ^= 0xff;
    EXPECT_EQ(deserializeKind(bytes_, cpu_.options()),
              sim::SnapshotError::Kind::BadMagic);
}

TEST_F(SnapshotNegative, VersionSkewRejected)
{
    bytes_[4] += 1; // version field follows the magic
    EXPECT_EQ(deserializeKind(bytes_, cpu_.options()),
              sim::SnapshotError::Kind::BadVersion);
}

TEST_F(SnapshotNegative, ConfigHashMismatchRejected)
{
    sim::CpuOptions other = cpu_.options();
    other.windows.numWindows = 4;
    ASSERT_NE(sim::configHash(other), sim::configHash(cpu_.options()));
    EXPECT_EQ(deserializeKind(bytes_, other),
              sim::SnapshotError::Kind::ConfigMismatch);

    // Engine selection and stop policy are deliberately NOT part of
    // the architectural configuration.
    sim::CpuOptions engines = cpu_.options();
    engines.predecode = !engines.predecode;
    engines.threaded = !engines.threaded;
    engines.superblock = !engines.superblock;
    engines.maxInstructions /= 2;
    EXPECT_EQ(sim::configHash(engines), sim::configHash(cpu_.options()));
}

TEST_F(SnapshotNegative, TrailingGarbageRejected)
{
    bytes_.push_back(0x00);
    EXPECT_EQ(deserializeKind(bytes_, cpu_.options()),
              sim::SnapshotError::Kind::Corrupt);
}

TEST_F(SnapshotNegative, ErrorMessagesCarryByteOffsets)
{
    // Every rejection names the failing byte offset, so a corrupt
    // checkpoint (or fleet shard) can be located with a hex dump.
    const auto message = [&](const std::vector<uint8_t> &bytes) {
        try {
            (void)sim::deserializeSnapshot(bytes, cpu_.options());
        } catch (const sim::SnapshotError &err) {
            return std::string(err.what());
        }
        ADD_FAILURE() << "deserialization unexpectedly succeeded";
        return std::string();
    };

    std::vector<uint8_t> cut(bytes_.begin(), bytes_.begin() + 9);
    EXPECT_NE(message(cut).find("at byte"), std::string::npos);

    std::vector<uint8_t> magic = bytes_;
    magic[0] ^= 0xff;
    EXPECT_NE(message(magic).find("at byte"), std::string::npos);

    std::vector<uint8_t> version = bytes_;
    version[4] += 1;
    EXPECT_NE(message(version).find("at byte"), std::string::npos);

    std::vector<uint8_t> trailing = bytes_;
    trailing.push_back(0x00);
    EXPECT_NE(message(trailing).find("at byte"), std::string::npos);
}

TEST_F(SnapshotNegative, SerializedStateActuallyRestores)
{
    const sim::Snapshot snap =
        sim::deserializeSnapshot(bytes_, cpu_.options());
    sim::Cpu other;
    other.restore(snap);
    ASSERT_TRUE(other.run().halted());
    EXPECT_EQ(other.memory().peek32(512), 1u);
}

} // namespace
