/**
 * @file
 * Delay-slot optimizer tests: the fill cases, every safety rule that
 * must refuse a hoist, and end-to-end semantic preservation.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "isa/disasm.hh"
#include "sim/cpu.hh"

namespace {

using namespace risc1;
using namespace risc1::assembler;

/** Assemble with filling enabled and return the fill statistics. */
SlotStats
fillStats(const std::string &src)
{
    AsmResult result = assemble(src);
    EXPECT_TRUE(result.ok()) << result.errorText();
    return result.slotStats;
}

/** Disassembly of instruction `index` with filling enabled. */
std::string
filledInst(const std::string &src, unsigned index)
{
    AsmResult result = assemble(src);
    EXPECT_TRUE(result.ok()) << result.errorText();
    const uint32_t addr = 0x1000 + 4 * index;
    return isa::disassembleWord(*result.program.wordAt(addr), addr);
}

TEST(Optimizer, HoistsAluIntoUnconditionalBranchSlot)
{
    const std::string src = R"(
_start: nop
        add  r2, 1, r2
        b    _start
)";
    EXPECT_EQ(fillStats(src).filledSlots, 1u);
    // Layout becomes: nop ; b ; add (in the slot).
    EXPECT_EQ(filledInst(src, 1).substr(0, 4), "jmpr");
    EXPECT_EQ(filledInst(src, 2), "add      r2, 1, r2");
}

TEST(Optimizer, HoistsLoadsAndStores)
{
    EXPECT_EQ(fillStats("_start: nop\n ldl (r2)0, r3\n b _start\n")
                  .filledSlots,
              1u);
    EXPECT_EQ(fillStats("_start: nop\n stl r3, (r2)0\n b _start\n")
                  .filledSlots,
              1u);
    EXPECT_EQ(fillStats("_start: nop\n ldhi r3, 5\n b _start\n")
                  .filledSlots,
              1u);
}

TEST(Optimizer, RefusesSccProducerBeforeConditionalBranch)
{
    // The branch consumes the flags the candidate would set.
    const std::string src = R"(
_start: cmp  r2, r3
        beq  _start
)";
    EXPECT_EQ(fillStats(src).filledSlots, 0u);
}

TEST(Optimizer, AllowsSccProducerBeforeUnconditionalBranch)
{
    const std::string src = R"(
_start: nop
        adds r2, 1, r2
        b    _start
)";
    EXPECT_EQ(fillStats(src).filledSlots, 1u);
}

TEST(Optimizer, RefusesWhenTransferReadsCandidateResult)
{
    // jmp's target register is written by the candidate.
    const std::string src = R"(
_start: nop
        add  r2, 4, r2
        jmp  alw, (r2)0
)";
    EXPECT_EQ(fillStats(src).filledSlots, 0u);
}

TEST(Optimizer, RefusesLabelledCandidateOrTransfer)
{
    // Jumping straight to `mid` must not start executing the add, so
    // hoisting is refused. (Copy-from-target may still fill the slot —
    // the assertions pin the *hoist* decision.)
    EXPECT_EQ(fillStats(R"(
_start: nop
mid:    add  r2, 1, r2
        b    _start
)")
                  .filledFromPred,
              0u);
    EXPECT_EQ(fillStats(R"(
_start: add  r2, 1, r2
lbl:    b    _start
)")
                  .filledFromPred,
              0u);
}

TEST(Optimizer, CopiesTargetIntoAlwaysTakenSlots)
{
    // The hoist candidate sets flags? No — here the predecessor IS the
    // branch's label, so hoisting is refused; copy-from-target takes
    // over: the loop head is copied into the slot and the branch
    // retargeted past it.
    AsmResult result = assemble(R"(
_start: clr  r16
loop:   add  r16, 1, r16
        cmp  r16, 10
        beq  out
        b    loop
out:    stl  r16, (r0)512
        halt
)");
    ASSERT_TRUE(result.ok()) << result.errorText();
    EXPECT_GE(result.slotStats.filledFromTarget, 1u);

    // And semantics hold.
    sim::Cpu cpu;
    cpu.load(result.program);
    ASSERT_TRUE(cpu.run().halted());
    EXPECT_EQ(cpu.memory().peek32(512), 10u);
}

TEST(Optimizer, RefusesTargetCopyOfNopsAndTransfers)
{
    // Target is a NOP: pointless, refused. Target is a branch: unsafe,
    // refused.
    EXPECT_EQ(fillStats(R"(
_start: nop
        b    _start
)")
                  .filledSlots,
              0u);
    EXPECT_EQ(fillStats(R"(
_start: b    _start
)")
                  .filledSlots,
              0u);
}

TEST(Optimizer, CallSlotOnlyTakesGlobalOnlyCandidates)
{
    // Window registers are renamed across CALL: refuse.
    EXPECT_EQ(fillStats(R"(
_start: nop
        add  r16, 1, r16
        call f
f:      ret
)")
                  .filledSlots,
              0u);
    // Globals are shared across windows: allowed.
    EXPECT_EQ(fillStats(R"(
_start: nop
        add  r2, 1, r2
        call f
f:      ret
)")
                  .filledSlots,
              1u);
}

TEST(Optimizer, DoesNotStealAnEarlierFilledSlot)
{
    // After filling the first branch's slot, the moved instruction sits
    // right after that branch; the second branch must not re-hoist it.
    const std::string src = R"(
_start: add  r2, 1, r2
        b    one
one:    b    two
two:    halt
)";
    AsmResult result = assemble(src);
    ASSERT_TRUE(result.ok());
    // Only the first slot can be filled (second transfer is labelled
    // anyway); semantics checked below in the execution tests.
    EXPECT_LE(result.slotStats.filledSlots, 1u);
}

/**
 * Semantic preservation: a flag-and-loop heavy program must compute
 * the same result with the optimizer on and off.
 */
TEST(Optimizer, PreservesSemanticsOnBranchyCode)
{
    const std::string src = R"(
_start: clr  r16
        mov  25, r17
loop:   add  r16, r17, r16
        and  r16, 7, r18
        cmp  r18, 3
        bne  skip
        add  r16, 100, r16
skip:   subs r17, 1, r17
        bne  loop
        stl  r16, (r0)512
        halt
)";
    auto run = [&](bool fill) {
        AsmOptions opts;
        opts.fillDelaySlots = fill;
        sim::Cpu cpu;
        cpu.load(assembleOrDie(src, opts));
        EXPECT_TRUE(cpu.run().halted());
        return cpu.memory().peek32(512);
    };
    const uint32_t with = run(true);
    const uint32_t without = run(false);
    EXPECT_EQ(with, without);
    EXPECT_NE(with, 0u);
}

TEST(Optimizer, FilledProgramsRunFewerCycles)
{
    // The non-flag-setting add directly before `bne` is hoistable; the
    // flags it tests come from the earlier subs and persist across it.
    const std::string src = R"(
_start: clr  r16
        mov  200, r17
loop:   subs r17, 1, r17
        add  r16, r17, r16
        bne  loop
        halt
)";
    auto cycles = [&](bool fill) {
        AsmOptions opts;
        opts.fillDelaySlots = fill;
        sim::Cpu cpu;
        cpu.load(assembleOrDie(src, opts));
        EXPECT_TRUE(cpu.run().halted());
        return cpu.stats().cycles;
    };
    EXPECT_LT(cycles(true), cycles(false));
}

} // namespace
