/**
 * @file
 * Native block-to-block chaining for the template JIT (CpuOptions::
 * jitChain): compiled blocks transfer directly to each other through
 * patched exit slots and defer per-exit statistics to one commit at
 * the true exit. Chaining must be a pure optimisation on top of an
 * engine that is already pinned as a pure optimisation, so every
 * scenario here demands byte-identical architectural state AND
 * statistics — against the plain interpreter, and between the chained
 * and unchained JIT engines at equal instruction counts (the
 * `--jit-no-chain` A/B the benches use). The hard cases: unlink on
 * self-modifying-store demotion (a stale patch would jump into dead
 * code re-formed at the same head), mid-chained-run snapshot/restore
 * and runUntil pausing, and fuzzed programs under the lockstep
 * sentinel with chaining forced on. On hosts without templates the
 * engine falls back and only the engagement assertions are skipped.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "jit/arena.hh"
#include "sim/cpu.hh"
#include "sim/lockstep.hh"
#include "sim/snapshot.hh"
#include "support/logging.hh"
#include "workloads/workload.hh"

namespace {

using namespace risc1;

void
expectStatsEq(const sim::SimStats &a, const sim::SimStats &b,
              const std::string &what)
{
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.perOpcode, b.perOpcode) << what;
    EXPECT_EQ(a.perClass, b.perClass) << what;
    EXPECT_EQ(a.branches, b.branches) << what;
    EXPECT_EQ(a.branchesTaken, b.branchesTaken) << what;
    EXPECT_EQ(a.nopsExecuted, b.nopsExecuted) << what;
    EXPECT_EQ(a.calls, b.calls) << what;
    EXPECT_EQ(a.returns, b.returns) << what;
    EXPECT_EQ(a.windowOverflows, b.windowOverflows) << what;
    EXPECT_EQ(a.windowUnderflows, b.windowUnderflows) << what;
    EXPECT_EQ(a.spillWords, b.spillWords) << what;
    EXPECT_EQ(a.refillWords, b.refillWords) << what;
    EXPECT_EQ(a.memory.instFetches, b.memory.instFetches) << what;
    EXPECT_EQ(a.memory.dataReads, b.memory.dataReads) << what;
    EXPECT_EQ(a.memory.dataWrites, b.memory.dataWrites) << what;
}

sim::CpuOptions
chainOptions()
{
    sim::CpuOptions opts;
    opts.fuse = false;
    opts.superblock = true;
    opts.jit = true;
    opts.jitChain = true;
    return opts;
}

sim::CpuOptions
nochainOptions()
{
    sim::CpuOptions opts = chainOptions();
    opts.jitChain = false;
    return opts;
}

sim::CpuOptions
plainOptions()
{
    sim::CpuOptions opts;
    opts.threaded = false;
    return opts;
}

/** The reference: the plain (non-predecoded) interpreter. */
sim::CpuOptions
interpOptions()
{
    sim::CpuOptions opts;
    opts.predecode = false;
    opts.threaded = false;
    opts.fuse = false;
    opts.superblock = false;
    return opts;
}

assembler::Program
assembleRaw(const std::string &src)
{
    assembler::AsmOptions no_fill;
    no_fill.fillDelaySlots = false;
    return assembler::assembleOrDie(src, no_fill);
}

// ---- Suite differential: chained engine vs the plain interpreter ---------

TEST(JitChain, RiscSuiteDifferentialChained)
{
    size_t patches = 0;
    for (const workloads::Workload &wl : workloads::allWorkloads()) {
        const assembler::Program prog =
            workloads::buildRisc(wl, wl.defaultScale);

        sim::Cpu chained(chainOptions());
        sim::Cpu plain(plainOptions());
        chained.load(prog);
        plain.load(prog);
        const sim::ExecResult rc = chained.run();
        const sim::ExecResult rp = plain.run();

        EXPECT_EQ(rc.reason, rp.reason) << wl.name;
        EXPECT_EQ(chained.memory().peek32(workloads::ResultAddr),
                  plain.memory().peek32(workloads::ResultAddr))
            << wl.name;
        expectStatsEq(chained.stats(), plain.stats(), wl.name);
        patches += chained.jitChainPatches();
    }
    // The suite must actually exercise patched native transfers, not
    // just pass because chaining never engaged.
    if (jit::hostSupported())
        EXPECT_GT(patches, 0u);
    else
        EXPECT_EQ(patches, 0u);
}

// ---- Chained vs unchained: byte-identical at equal instruction counts ----

TEST(JitChain, ChainOnMatchesChainOffByteExact)
{
    size_t patches = 0;
    for (const workloads::Workload &wl : workloads::allWorkloads()) {
        const assembler::Program prog =
            workloads::buildRisc(wl, wl.defaultScale);

        sim::Cpu on(chainOptions());
        sim::Cpu off(nochainOptions());
        on.load(prog);
        off.load(prog);
        const sim::ExecResult ron = on.run();
        const sim::ExecResult roff = off.run();

        EXPECT_EQ(ron.reason, roff.reason) << wl.name;
        EXPECT_EQ(ron.instructions, roff.instructions) << wl.name;
        EXPECT_EQ(on.memory().peek32(workloads::ResultAddr),
                  off.memory().peek32(workloads::ResultAddr))
            << wl.name;
        EXPECT_EQ(on.pc(), off.pc()) << wl.name;
        expectStatsEq(on.stats(), off.stats(), wl.name);
        EXPECT_EQ(off.jitChainPatches(), 0u) << wl.name;
        patches += on.jitChainPatches();
    }
    if (jit::hostSupported()) {
        EXPECT_GT(patches, 0u);
    }
}

// ---- runUntil pausing over chained code ----------------------------------

TEST(JitChain, RunUntilPausingByteIdenticalToUnchained)
{
    // Walk one workload in odd-sized instruction quanta on a chained
    // and an unchained engine side by side: every pause must land on
    // the precise instruction with identical statistics — the budget
    // admission in the chain stubs must cut a chained run at exactly
    // the boundary the interpreted max_iters computation would.
    const workloads::Workload *pick = nullptr;
    for (const workloads::Workload &wl : workloads::allWorkloads())
        if (wl.name == "fibonacci")
            pick = &wl;
    ASSERT_NE(pick, nullptr);
    const assembler::Program prog =
        workloads::buildRisc(*pick, pick->defaultScale);

    sim::Cpu on(chainOptions());
    sim::Cpu off(nochainOptions());
    on.load(prog);
    off.load(prog);
    uint64_t at = 0;
    for (;;) {
        at += 997;
        const sim::ExecResult ron = on.runUntil(at);
        const sim::ExecResult roff = off.runUntil(at);
        ASSERT_EQ(ron.reason, roff.reason) << "at " << at;
        ASSERT_EQ(ron.instructions, roff.instructions) << "at " << at;
        expectStatsEq(on.stats(), off.stats(),
                      strprintf("pause at %llu",
                                static_cast<unsigned long long>(at)));
        if (ron.reason != sim::StopReason::Paused)
            break;
        ASSERT_EQ(on.stats().instructions, at);
    }
    ASSERT_TRUE(on.halted());
    EXPECT_EQ(on.memory().peek32(workloads::ResultAddr),
              off.memory().peek32(workloads::ResultAddr));
}

// ---- Unlink on self-modifying-store demotion -----------------------------

TEST(JitChain, UnlinkOnSelfModifyingStoreDemotion)
{
    // The hot loop chains its blocks, then the store at iteration 10
    // rewrites the MIDDLE word of the running block. Demotion must
    // unlink every patched site that mentions the record: the block
    // re-forms at the same head PC (often recycling the very same
    // record storage), so a stale patch would target-match and jump
    // into the dead variant's code — computing with the pre-store
    // instruction and corrupting both the result and the statistics.
    const assembler::Program enc =
        assembler::assembleOrDie("_start: add r17, 100, r17\n halt\n");
    const uint32_t patched = *enc.wordAt(enc.entry);

    const std::string src = strprintf(R"(
        .equ RESULT, %u
        .org  256
_start: ldl   (r0)newword, r16
        clr   r17
        clr   r18
loop:   add   r17, 1, r17
        add   r17, 1, r17
mid:    add   r17, 1, r17
        add   r17, 1, r17
        add   r18, 1, r18
        cmp   r18, 20
        bge   done
        cmp   r18, 10
        blt   loop
        stl   r16, (r0)mid
        b     loop
done:   stl   r17, (r0)RESULT
        halt
newword: .word %u
)",
                                      workloads::ResultAddr, patched);
    const assembler::Program prog = assembleRaw(src);

    sim::Cpu chained(chainOptions());
    sim::Cpu plain(plainOptions());
    chained.load(prog);
    plain.load(prog);
    const sim::ExecResult rc = chained.run();
    const sim::ExecResult rp = plain.run();

    ASSERT_TRUE(rc.halted());
    ASSERT_TRUE(rp.halted());
    // 10 iterations of +4, then 10 of +103.
    EXPECT_EQ(plain.memory().peek32(workloads::ResultAddr), 1070u);
    EXPECT_EQ(chained.memory().peek32(workloads::ResultAddr), 1070u);
    expectStatsEq(chained.stats(), plain.stats(),
                  "mid-block store, chained");
    EXPECT_GE(chained.stats().sbBlocksDemoted, 1u);
    // Reloading drains the whole chain registry before the arena
    // resets (CodeArena::reset asserts it): no patch survives its
    // records.
    chained.load(prog);
    EXPECT_EQ(chained.jitChainPatches(), 0u);
    EXPECT_EQ(chained.jitCodeBytes(), 0u);
}

// ---- Mid-chained-run snapshot/restore ------------------------------------

TEST(JitChain, SnapshotRestoreMidChainedRunMatchesPlain)
{
    // Snapshot while chained native code is hot, keep running, then
    // restore and finish: restore() must unlink every patch and
    // retire every compiled entry, and the final state must match the
    // uninterrupted plain run exactly.
    const workloads::Workload *pick = nullptr;
    for (const workloads::Workload &wl : workloads::allWorkloads())
        if (wl.recursive)
            pick = &wl;
    ASSERT_NE(pick, nullptr);
    const assembler::Program prog =
        workloads::buildRisc(*pick, pick->defaultScale);

    sim::Cpu plain(plainOptions());
    plain.load(prog);
    const sim::ExecResult rp = plain.run();
    ASSERT_TRUE(rp.halted());

    sim::Cpu chained(chainOptions());
    chained.load(prog);
    const uint64_t early = rp.instructions / 5 + 3;
    const uint64_t late = (3 * rp.instructions) / 4 + 1;
    ASSERT_EQ(chained.runUntil(early).reason, sim::StopReason::Paused);
    EXPECT_EQ(chained.stats().instructions, early);
    const sim::Snapshot snap = chained.snapshot();
    ASSERT_EQ(chained.runUntil(late).reason, sim::StopReason::Paused);
    EXPECT_EQ(chained.stats().instructions, late);
    ASSERT_GT(chained.stats().sbInstructions, 0u);

    chained.restore(snap);
    EXPECT_EQ(chained.jitChainPatches(), 0u); // unlinked wholesale
    EXPECT_EQ(chained.jitCodeBytes(), 0u); // arena died with records
    const sim::ExecResult rc = chained.run();
    ASSERT_TRUE(rc.halted());
    EXPECT_EQ(chained.memory().peek32(workloads::ResultAddr),
              plain.memory().peek32(workloads::ResultAddr));
    expectStatsEq(chained.stats(), plain.stats(), "restored chained");
}

// ---- Lockstep sentinel with chaining forced on ---------------------------

TEST(JitChain, FuzzedProgramsRunDivergenceFree)
{
    // Fixed seeds, odd stride: random programs exercise step mixes
    // (stores into text, carry chains, window churn) no curated
    // workload reaches, and every pause lands mid-chained-run.
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        const assembler::Program prog = sim::randomProgram(seed);
        sim::LockstepOptions opts;
        opts.stride = 313;
        opts.maxInstructions = 60'000;
        const sim::LockstepResult res = sim::runLockstep(
            prog, interpOptions(), chainOptions(), opts);
        EXPECT_FALSE(res.diverged)
            << "seed " << seed << " vs chained jit\n"
            << res.report.str();
        EXPECT_TRUE(res.reason == sim::StopReason::Halted ||
                    res.reason == sim::StopReason::Paused)
            << "seed " << seed << ": reason "
            << static_cast<unsigned>(res.reason);
    }
}

// ---- Arena chain registry ------------------------------------------------

TEST(JitChain, ArenaAccountsUnlinkedPatches)
{
    // Unlinking a chain patch restores the original slot bytes and
    // accounts the dead stub as retired arena space; reset() then
    // asserts the registry drained.
    jit::CodeArena arena;
    if (!jit::hostSupported())
        GTEST_SKIP() << "no templates for " << jit::hostArchName();
    const std::vector<uint8_t> slot = {0xc3, 0x90, 0x90, 0x90};
    const void *p = arena.install(slot.data(), slot.size());
    ASSERT_NE(p, nullptr);
    const size_t off = arena.offsetOf(p);
    int src = 0;
    int dst = 0;
    uint8_t flag = 0;
    const std::vector<uint8_t> patch = {0x90, 0x90, 0xc3};
    ASSERT_TRUE(arena.patchChain(off, patch.data(), patch.size(), &src,
                                 &dst, &flag));
    EXPECT_EQ(flag, 1u);
    EXPECT_EQ(arena.chainCount(), 1u);
    EXPECT_EQ(arena.rxAt(off)[0], 0x90);
    const size_t retired_before = arena.retiredBytes();
    arena.unlinkChainsFor(&dst); // either endpoint unlinks
    EXPECT_EQ(arena.chainCount(), 0u);
    EXPECT_EQ(flag, 0u);
    EXPECT_EQ(arena.rxAt(off)[0], 0xc3); // original bytes restored
    EXPECT_EQ(arena.retiredBytes(), retired_before + patch.size());
    arena.reset(); // would assert with a live registry
    EXPECT_EQ(arena.usedBytes(), 0u);
}

} // namespace
