/**
 * @file
 * Pipeline-model tests: the two-stage model must agree exactly with
 * the TimingModel cost function (they describe the same machine); the
 * three-stage model adds load-use interlocks only where a dependent
 * consumer immediately follows a load.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "sim/pipeline.hh"
#include "workloads/workload.hh"

namespace {

using namespace risc1;
using assembler::assembleOrDie;

assembler::AsmOptions
noFill()
{
    assembler::AsmOptions opts;
    opts.fillDelaySlots = false; // keep micro-tests' layout literal
    return opts;
}

sim::PipelineStats
runModel(const assembler::Program &prog, sim::PipelineVariant variant)
{
    sim::Cpu cpu;
    cpu.load(prog);
    sim::PipelineModel model(variant);
    auto result = sim::runWithPipeline(cpu, model);
    EXPECT_TRUE(result.halted()) << result.message;
    return model.stats();
}

class TwoStageAgreement
    : public ::testing::TestWithParam<workloads::Workload>
{};

TEST_P(TwoStageAgreement, MatchesTimingModelExactly)
{
    const auto &wl = GetParam();
    assembler::Program prog = workloads::buildRisc(wl, wl.defaultScale);

    sim::Cpu reference;
    reference.load(prog);
    auto ref_result = reference.run();
    ASSERT_TRUE(ref_result.halted());

    const sim::PipelineStats two =
        runModel(prog, sim::PipelineVariant::TwoStage);
    EXPECT_EQ(two.cycles, ref_result.cycles) << wl.name;
    EXPECT_EQ(two.instructions, ref_result.instructions) << wl.name;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, TwoStageAgreement,
    ::testing::ValuesIn(workloads::allWorkloads()),
    [](const ::testing::TestParamInfo<workloads::Workload> &info) {
        return info.param.name;
    });

TEST(ThreeStage, InterlocksOnlyOnImmediateLoadUse)
{
    // ldl ; dependent add  -> one interlock.
    assembler::Program dependent = assembleOrDie(R"(
_start: mov   64, r16
        ldl   (r0)64, r17
        add   r17, 1, r18
        halt
)",
                                                 noFill());
    const auto dep = runModel(dependent,
                              sim::PipelineVariant::ThreeStage);
    EXPECT_EQ(dep.loadUseInterlocks, 1u);

    // ldl ; independent add ; consumer -> no interlock.
    assembler::Program spaced = assembleOrDie(R"(
_start: mov   64, r16
        ldl   (r0)64, r17
        add   r16, 1, r19
        add   r17, 1, r18
        halt
)",
                                              noFill());
    const auto far = runModel(spaced, sim::PipelineVariant::ThreeStage);
    EXPECT_EQ(far.loadUseInterlocks, 0u);
}

TEST(ThreeStage, StoreAfterLoadInterlocksOnDatum)
{
    // The store reads the just-loaded value as its datum.
    assembler::Program prog = assembleOrDie(R"(
_start: ldl   (r0)64, r17
        stl   r17, (r0)68
        halt
)",
                                            noFill());
    const auto stats = runModel(prog, sim::PipelineVariant::ThreeStage);
    EXPECT_EQ(stats.loadUseInterlocks, 1u);
}

TEST(ThreeStage, ShorterCycleWinsDespiteInterlocks)
{
    // On the whole suite, the 3-stage time at its shorter cycle should
    // beat the 2-stage time for most programs.
    unsigned faster = 0;
    const auto &suite = workloads::allWorkloads();
    for (const auto &wl : suite) {
        assembler::Program prog =
            workloads::buildRisc(wl, wl.defaultScale);
        const auto two = runModel(prog, sim::PipelineVariant::TwoStage);
        const auto three = runModel(prog,
                                    sim::PipelineVariant::ThreeStage);
        EXPECT_GE(three.cycles, two.cycles) << wl.name;
        if (three.timeUs() < two.timeUs())
            ++faster;
    }
    EXPECT_GE(faster, suite.size() - 1);
}

TEST(PipelineRun, FaultsPropagate)
{
    assembler::Program prog = assembleOrDie("_start: .word 0xffffffff\n");
    sim::Cpu cpu;
    cpu.load(prog);
    sim::PipelineModel model(sim::PipelineVariant::TwoStage);
    auto result = sim::runWithPipeline(cpu, model);
    EXPECT_EQ(result.reason, sim::StopReason::Fault);
}

} // namespace
