/**
 * @file
 * Runtime-library tests: every routine against its host oracle over
 * randomized inputs (differential property tests), plus the memory and
 * string routines on concrete buffers.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "sim/cpu.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "workloads/rtlib.hh"

namespace {

using namespace risc1;
using namespace risc1::workloads;

/** Call a 2-arg rtlib routine and return what the caller sees in r10. */
uint32_t
call2(const std::string &routine, uint32_t a, uint32_t b)
{
    const std::string src = strprintf(R"(
_start: mov   0x%x, r10
        mov   0x%x, r11
        call  %s
        stl   r10, (r0)512
        halt
%s)",
                                      a, b, routine.c_str(),
                                      rtlib::sources({routine}).c_str());
    sim::Cpu cpu;
    cpu.load(assembler::assembleOrDie(src));
    auto result = cpu.run();
    EXPECT_TRUE(result.halted()) << routine << ": " << result.message;
    return cpu.memory().peek32(512);
}

TEST(Rtlib, RegistryIsConsistent)
{
    EXPECT_GE(rtlib::allRoutines().size(), 7u);
    EXPECT_NE(rtlib::findRoutine("mul32"), nullptr);
    EXPECT_EQ(rtlib::findRoutine("fsqrt"), nullptr);
    // Wrappers pull in their dependency exactly once.
    const std::string src = rtlib::sources({"udiv32", "umod32"});
    EXPECT_NE(src.find("udivmod32:"), std::string::npos);
    EXPECT_EQ(src.find("udivmod32:"), src.rfind("udivmod32:"));
}

TEST(Rtlib, MulKnownValues)
{
    EXPECT_EQ(call2("mul32", 0, 1234), 0u);
    EXPECT_EQ(call2("mul32", 7, 6), 42u);
    EXPECT_EQ(call2("mul32", 0xffffffff, 2), 0xfffffffeu);
    EXPECT_EQ(call2("mul32", 65536, 65536), 0u); // mod 2^32
}

TEST(Rtlib, DivModKnownValues)
{
    EXPECT_EQ(call2("udiv32", 100, 7), 14u);
    EXPECT_EQ(call2("umod32", 100, 7), 2u);
    EXPECT_EQ(call2("udiv32", 5, 9), 0u);
    EXPECT_EQ(call2("umod32", 5, 9), 5u);
    EXPECT_EQ(call2("udiv32", 0xffffffff, 1), 0xffffffffu);
    EXPECT_EQ(call2("udiv32", 0x80000000, 2), 0x40000000u);
}

class RtlibDifferential : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(RtlibDifferential, MulDivModMatchHostOnRandomInputs)
{
    Rng rng(GetParam() * 10007 + 3);
    for (int i = 0; i < 12; ++i) {
        const auto a = static_cast<uint32_t>(rng.next());
        auto b = static_cast<uint32_t>(rng.next());
        // Mix in small operands (fast common case).
        const uint32_t a2 = i % 2 ? a : a & 0xffff;
        if (i % 3 == 0)
            b &= 0xff;
        if (b == 0)
            b = 1;
        EXPECT_EQ(call2("mul32", a2, b), rtlib::hostMul32(a2, b));
        EXPECT_EQ(call2("udiv32", a2, b), rtlib::hostUdiv32(a2, b));
        EXPECT_EQ(call2("umod32", a2, b), rtlib::hostUmod32(a2, b));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtlibDifferential,
                         ::testing::Values(uint64_t{1}, uint64_t{2},
                                           uint64_t{3}));

TEST(Rtlib, MemcpyMovesBytesExactly)
{
    const std::string src = strprintf(R"(
_start: mov   dst, r10
        mov   src_d, r11
        mov   11, r12
        call  memcpy
        halt
src_d:  .asciz "hello byte"
        .align 4
dst:    .space 16
%s)",
                                      rtlib::sources({"memcpy"}).c_str());
    assembler::Program prog = assembler::assembleOrDie(src);
    sim::Cpu cpu;
    cpu.load(prog);
    ASSERT_TRUE(cpu.run().halted());
    const uint32_t dst = *prog.symbol("dst");
    const uint32_t src_a = *prog.symbol("src_d");
    for (unsigned i = 0; i < 11; ++i)
        EXPECT_EQ(cpu.memory().peek8(dst + i),
                  cpu.memory().peek8(src_a + i));
    EXPECT_EQ(cpu.memory().peek8(dst + 11), 0u); // untouched tail
}

TEST(Rtlib, MemsetFillsRange)
{
    const std::string src = strprintf(R"(
_start: mov   dst, r10
        mov   0xAB, r11
        mov   8, r12
        call  memset
        halt
        .align 4
dst:    .space 12
%s)",
                                      rtlib::sources({"memset"}).c_str());
    assembler::Program prog = assembler::assembleOrDie(src);
    sim::Cpu cpu;
    cpu.load(prog);
    ASSERT_TRUE(cpu.run().halted());
    const uint32_t dst = *prog.symbol("dst");
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(cpu.memory().peek8(dst + i), 0xABu);
    EXPECT_EQ(cpu.memory().peek8(dst + 8), 0u);
}

TEST(Rtlib, StrlenCountsToNul)
{
    const std::string src = strprintf(R"(
_start: mov   text, r10
        call  strlen
        stl   r10, (r0)512
        halt
text:   .asciz "window"
%s)",
                                      rtlib::sources({"strlen"}).c_str());
    sim::Cpu cpu;
    cpu.load(assembler::assembleOrDie(src));
    ASSERT_TRUE(cpu.run().halted());
    EXPECT_EQ(cpu.memory().peek32(512), 6u);
}

TEST(Rtlib, RoutinesAreWindowClean)
{
    // Calling a routine must not disturb the caller's locals/globals.
    const std::string src = strprintf(R"(
_start: mov   111, r2        ; global
        mov   222, r16       ; local
        mov   1234, r10
        mov   77, r11
        call  mul32
        stl   r2, (r0)512
        stl   r16, (r0)516
        halt
%s)",
                                      rtlib::sources({"mul32"}).c_str());
    sim::Cpu cpu;
    cpu.load(assembler::assembleOrDie(src));
    ASSERT_TRUE(cpu.run().halted());
    EXPECT_EQ(cpu.memory().peek32(512), 111u);
    EXPECT_EQ(cpu.memory().peek32(516), 222u);
}

} // namespace
