/**
 * @file
 * Disassembler/assembler round-trip property: for every opcode and
 * randomized legal fields, the disassembly text reassembles (at the
 * same address) to the identical 32-bit word. This locks the two
 * toolchain directions together.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "support/bits.hh"
#include "isa/disasm.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace {

using namespace risc1;
using namespace risc1::isa;

class DisasmRoundTrip : public ::testing::TestWithParam<unsigned>
{};

TEST_P(DisasmRoundTrip, TextReassemblesToSameWord)
{
    unsigned count = 0;
    const OpInfo *ops = opTable(count);
    const OpInfo &info = ops[GetParam()];
    Rng rng(GetParam() * 31337 + 7);

    for (int trial = 0; trial < 200; ++trial) {
        // Randomize only the fields the instruction architecturally
        // uses; the disassembly cannot carry dont-care bits.
        Instruction inst;
        inst.op = info.op;
        inst.scc = info.mayScc && rng.chance(1, 2);
        if (info.rdIsCond) {
            // The assembler only emits real conditions (never "nev").
            inst.rd = static_cast<uint8_t>(1 + rng.below(15));
        } else if (info.writesRd || info.rdIsSource) {
            inst.rd = static_cast<uint8_t>(rng.below(32));
        }
        if (info.format == Format::LongImm) {
            inst.imm19 = static_cast<int32_t>(
                rng.range(-(1 << 18), (1 << 18) - 1));
        } else {
            if (info.readsRs1)
                inst.rs1 = static_cast<uint8_t>(rng.below(32));
            if (info.usesS2) {
                inst.imm = rng.chance(1, 2);
                if (inst.imm)
                    inst.simm13 =
                        static_cast<int32_t>(rng.range(-4096, 4095));
                else
                    inst.rs2 = static_cast<uint8_t>(rng.below(32));
            }
        }

        const uint32_t pc = 0x1000;
        const uint32_t word = encode(inst);
        const std::string text = disassembleWord(word, pc);

        // Reassemble the single line at the same origin, without the
        // assembler adding delay slots of its own.
        assembler::AsmOptions opts;
        opts.autoDelaySlots = false;
        assembler::AsmResult result = assembler::assemble(text, opts);
        ASSERT_TRUE(result.ok())
            << "word 0x" << std::hex << word << " text '" << text
            << "':\n"
            << result.errorText();
        auto reworded = result.program.wordAt(pc);
        ASSERT_TRUE(reworded.has_value()) << text;
        EXPECT_EQ(*reworded, word) << text;
    }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, DisasmRoundTrip,
                         ::testing::Range(0u, NumOpcodes));

TEST(DisasmRoundTrip, WholeProgramListingReassembles)
{
    // Assemble a real program, disassemble every instruction word, and
    // reassemble the joined text into the identical code image.
    const char *src = R"(
_start: mov   100, r16
loop:   subs  r16, 1, r16
        ldl   (r0)256, r17
        add   r17, r16, r17
        stl   r17, (r0)256
        bne   loop
        halt
)";
    assembler::Program first = assembler::assembleOrDie(src);

    std::string listing;
    const assembler::Segment &seg = first.segments.front();
    for (uint32_t off = 0; off < seg.bytes.size(); off += 4) {
        const uint32_t addr = seg.base + off;
        listing += isa::disassembleWord(*first.wordAt(addr), addr);
        listing += "\n";
    }

    assembler::AsmOptions opts;
    opts.autoDelaySlots = false;
    assembler::AsmResult second = assembler::assemble(listing, opts);
    ASSERT_TRUE(second.ok()) << second.errorText() << "\n" << listing;
    ASSERT_EQ(second.program.segments.size(), 1u);
    EXPECT_EQ(second.program.segments.front().bytes, seg.bytes);
}

} // namespace
