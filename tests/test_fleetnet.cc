/**
 * @file
 * The distributed fleet layer: frame codec failure taxonomy (version
 * skew, corrupt frame, truncated stream, clean close), the Assign
 * payload codec, host:port parsing, and — end to end over real
 * loopback TCP — a RemotePool serving an in-thread runFleetWorker:
 * assigned shards come back as valid cache records byte-identical to
 * faultCampaignRange, the status endpoint serves live text, content-
 * level quarantine evicts a worker, and a whole runFleet over the pool
 * reproduces the serial campaign byte for byte. Chaos at process
 * granularity (kill/hang/corrupt over spawned workers) lives in the
 * bench/fleet_tcp_determinism.cmake ctest, which needs real binaries.
 */

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "core/experiments.hh"
#include "core/fleet.hh"
#include "core/fleetnet.hh"
#include "net/frame.hh"
#include "net/transport.hh"

namespace {

namespace fs = std::filesystem;
using namespace risc1;
using core::AssignSpec;
using core::FaultCampaignRow;
using core::RemoteEvent;
using core::RemotePool;
using core::ShardParams;
using net::FleetProtocolError;
using net::Frame;
using net::FrameType;

/** A scratch directory removed on scope exit. */
class TempDir
{
  public:
    TempDir()
        : path_(fs::temp_directory_path() /
                ("risc1_fleetnet_test_" + std::to_string(::getpid()) +
                 "_" + std::to_string(counter_++)))
    {
        fs::create_directories(path_);
    }

    ~TempDir() { fs::remove_all(path_); }

    std::string str() const { return path_.string(); }

  private:
    static int counter_;
    fs::path path_;
};

int TempDir::counter_ = 0;

void
sendRaw(net::Channel &channel, const std::vector<uint8_t> &bytes)
{
    channel.send(reinterpret_cast<const char *>(bytes.data()),
                 bytes.size());
}

FleetProtocolError::Kind
recvMustThrow(net::Channel &channel)
{
    try {
        (void)net::recvFrame(channel);
    } catch (const FleetProtocolError &err) {
        EXPECT_FALSE(std::string(err.what()).empty());
        return err.kind();
    }
    ADD_FAILURE() << "malformed frame accepted";
    return FleetProtocolError::Kind::CorruptFrame;
}

/** Spin until `done` or the deadline; the pool is asynchronous. */
template <typename Pred>
bool
waitFor(Pred done, double timeout_sec = 30.0)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(timeout_sec);
    while (!done()) {
        if (std::chrono::steady_clock::now() > deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return true;
}

// ---- frame codec -------------------------------------------------------

TEST(Frame, RoundTripsOverLoopback)
{
    auto [a, b] = net::loopbackPair();
    const std::vector<uint8_t> payload = {1, 2, 3, 0xff, 0};
    net::sendFrame(*a, FrameType::Assign, payload);
    net::sendFrame(*a, FrameType::Heartbeat); // empty payload
    std::optional<Frame> f1 = net::recvFrame(*b);
    ASSERT_TRUE(f1.has_value());
    EXPECT_EQ(f1->type, FrameType::Assign);
    EXPECT_EQ(f1->payload, payload);
    std::optional<Frame> f2 = net::recvFrame(*b);
    ASSERT_TRUE(f2.has_value());
    EXPECT_EQ(f2->type, FrameType::Heartbeat);
    EXPECT_TRUE(f2->payload.empty());
}

TEST(Frame, CleanCloseAtBoundaryIsNullopt)
{
    auto [a, b] = net::loopbackPair();
    net::sendFrame(*a, FrameType::Bye);
    a.reset(); // close after a complete frame
    std::optional<Frame> f = net::recvFrame(*b);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->type, FrameType::Bye);
    EXPECT_FALSE(net::recvFrame(*b).has_value());
}

TEST(Frame, VersionSkewIsTypedAndNamed)
{
    auto [a, b] = net::loopbackPair();
    sendRaw(*a, net::encodeFrame(FrameType::Hello, {},
                                 net::FleetProtocolVersion + 1));
    try {
        (void)net::recvFrame(*b);
        FAIL() << "skewed version accepted";
    } catch (const FleetProtocolError &err) {
        EXPECT_EQ(err.kind(), FleetProtocolError::Kind::VersionSkew);
        // The message must name both versions — it is what the
        // operator sees when a stale worker binary connects.
        const std::string what = err.what();
        EXPECT_NE(what.find("version"), std::string::npos) << what;
    }
}

TEST(Frame, CorruptPayloadByteFailsChecksum)
{
    auto [a, b] = net::loopbackPair();
    std::vector<uint8_t> raw =
        net::encodeFrame(FrameType::Assign, {1, 2, 3, 4});
    raw[raw.size() - 9] ^= 0x01; // last payload byte, as the chaos hook
    sendRaw(*a, raw);
    EXPECT_EQ(recvMustThrow(*b),
              FleetProtocolError::Kind::CorruptFrame);
}

TEST(Frame, BadMagicIsCorrupt)
{
    auto [a, b] = net::loopbackPair();
    std::vector<uint8_t> raw = net::encodeFrame(FrameType::Hello);
    raw[0] ^= 0xff;
    sendRaw(*a, raw);
    EXPECT_EQ(recvMustThrow(*b),
              FleetProtocolError::Kind::CorruptFrame);
}

TEST(Frame, UnknownTypeIsCorrupt)
{
    auto [a, b] = net::loopbackPair();
    sendRaw(*a, net::encodeFrame(static_cast<FrameType>(0xee)));
    EXPECT_EQ(recvMustThrow(*b),
              FleetProtocolError::Kind::CorruptFrame);
}

TEST(Frame, OversizedLengthIsCorruptNotAnAllocation)
{
    auto [a, b] = net::loopbackPair();
    std::vector<uint8_t> raw = net::encodeFrame(FrameType::Hello);
    // Stamp a payload length far past MaxFramePayload into the
    // header; the decoder must reject it from the length field alone.
    for (unsigned i = 0; i < 4; ++i)
        raw[9 + i] = 0xff;
    sendRaw(*a, raw);
    EXPECT_EQ(recvMustThrow(*b),
              FleetProtocolError::Kind::CorruptFrame);
}

TEST(Frame, PeerCloseMidFrameIsTruncatedStream)
{
    auto [a, b] = net::loopbackPair();
    const std::vector<uint8_t> raw =
        net::encodeFrame(FrameType::Assign, {1, 2, 3});
    // Header only, then half the payload, then the peer dies.
    std::vector<uint8_t> partial(raw.begin(), raw.begin() + 14);
    sendRaw(*a, partial);
    a.reset();
    EXPECT_EQ(recvMustThrow(*b),
              FleetProtocolError::Kind::TruncatedStream);
}

// ---- Assign payload codec ----------------------------------------------

TEST(Fleetnet, AssignSpecRoundTrips)
{
    AssignSpec spec;
    spec.token = 0xfeedfacecafebeefull;
    spec.injections = 123;
    spec.seed = 1981;
    spec.first = 7;
    spec.last = 99;
    spec.streaming = true;
    spec.recovery.enabled = true;
    spec.recovery.checkpointInterval = 4096;
    spec.jobs = 3;
    spec.chaos = "corrupt-frame";

    const AssignSpec got = core::decodeAssign(core::encodeAssign(spec));
    EXPECT_EQ(got.token, spec.token);
    EXPECT_EQ(got.injections, spec.injections);
    EXPECT_EQ(got.seed, spec.seed);
    EXPECT_EQ(got.first, spec.first);
    EXPECT_EQ(got.last, spec.last);
    EXPECT_EQ(got.streaming, spec.streaming);
    EXPECT_EQ(got.recovery.enabled, spec.recovery.enabled);
    EXPECT_EQ(got.recovery.checkpointInterval,
              spec.recovery.checkpointInterval);
    EXPECT_EQ(got.jobs, spec.jobs);
    EXPECT_EQ(got.chaos, spec.chaos);
}

TEST(Fleetnet, TruncatedAssignPayloadIsCorruptFrame)
{
    AssignSpec spec;
    spec.token = 42;
    spec.injections = 5;
    spec.seed = 7;
    spec.last = 10;
    const std::vector<uint8_t> full = core::encodeAssign(spec);
    for (size_t cut = 0; cut < full.size(); cut += 3) {
        std::vector<uint8_t> prefix(full.begin(), full.begin() + cut);
        try {
            (void)core::decodeAssign(prefix);
            FAIL() << "truncated Assign accepted at " << cut;
        } catch (const FleetProtocolError &err) {
            EXPECT_EQ(err.kind(),
                      FleetProtocolError::Kind::CorruptFrame);
        }
    }
}

// ---- host:port parsing -------------------------------------------------

TEST(Fleetnet, ParseHostPortForms)
{
    auto hp = core::parseHostPort("9000");
    ASSERT_TRUE(hp.has_value());
    EXPECT_EQ(hp->first, "127.0.0.1");
    EXPECT_EQ(hp->second, 9000);

    hp = core::parseHostPort(":65535");
    ASSERT_TRUE(hp.has_value());
    EXPECT_EQ(hp->first, "127.0.0.1");
    EXPECT_EQ(hp->second, 65535);

    hp = core::parseHostPort("worker-3.local:1");
    ASSERT_TRUE(hp.has_value());
    EXPECT_EQ(hp->first, "worker-3.local");
    EXPECT_EQ(hp->second, 1);

    EXPECT_FALSE(core::parseHostPort("").has_value());
    EXPECT_FALSE(core::parseHostPort("host:").has_value());
    EXPECT_FALSE(core::parseHostPort("host:abc").has_value());
    EXPECT_FALSE(core::parseHostPort("host:0").has_value());
    EXPECT_FALSE(core::parseHostPort("host:70000").has_value());
    EXPECT_FALSE(core::parseHostPort("nonsense").has_value());
}

// ---- pool + worker over loopback TCP -----------------------------------

// One real shard, small: one injection per workload over grid slots
// [0, 4). Shared so the expectation is computed once.
constexpr unsigned Injections = 1;
constexpr uint64_t Seed = 7;
constexpr uint64_t First = 0;
constexpr uint64_t Last = 4;

const std::vector<FaultCampaignRow> &
expectedShardRows()
{
    static const std::vector<FaultCampaignRow> rows =
        core::faultCampaignRange(Injections, Seed, First, Last, 2,
                                 true, {});
    return rows;
}

TEST(Fleetnet, PoolAssignsStatusServesQuarantineEvicts)
{
    core::PoolOptions popts;
    popts.heartbeatSec = 0.2;
    RemotePool pool(popts);
    ASSERT_NE(pool.port(), 0);

    // The status endpoint is live from construction.
    pool.setStatusText("campaign 0: warming up");
    EXPECT_EQ(core::fetchFleetStatus("127.0.0.1", pool.port()),
              "campaign 0: warming up");

    std::thread worker(
        [&] { core::runFleetWorker("127.0.0.1", pool.port(), 1); });
    ASSERT_TRUE(waitFor([&] { return pool.connectedWorkers() == 1; }))
        << "worker never completed the handshake";

    AssignSpec spec;
    spec.token = 71;
    spec.injections = Injections;
    spec.seed = Seed;
    spec.first = First;
    spec.last = Last;
    spec.streaming = true;
    ASSERT_TRUE(pool.assign(spec, /*timeout_sec=*/120));
    // Every worker is now busy: a second assign must be refused, not
    // queued — the coordinator owns the pending queue.
    EXPECT_FALSE(pool.assign(spec, 120));

    std::vector<RemoteEvent> events;
    ASSERT_TRUE(waitFor([&] {
        for (RemoteEvent &e : pool.drainEvents())
            events.push_back(e);
        return !events.empty();
    })) << "assigned shard never produced an event";
    ASSERT_EQ(events.size(), 1u);
    const RemoteEvent &done = events.front();
    EXPECT_TRUE(done.done);
    EXPECT_EQ(done.token, 71u);
    EXPECT_FALSE(done.stalled);

    // The record is the durable cache format verbatim: it validates
    // with the cache machinery and carries exactly the serial rows.
    const ShardParams params =
        core::shardParams(Injections, Seed, First, Last, {});
    const std::vector<FaultCampaignRow> rows =
        core::deserializeShardRecord(done.record, params);
    EXPECT_EQ(core::serializeShardRecord(params, rows),
              core::serializeShardRecord(params, expectedShardRows()));

    // Content-level quarantine: the coordinator's verdict evicts the
    // worker and the worker loop winds down on the dropped socket.
    pool.quarantine(done.worker);
    EXPECT_TRUE(waitFor([&] { return pool.connectedWorkers() == 0; }));
    EXPECT_EQ(pool.quarantined(), 1u);
    worker.join();
    pool.shutdown();
}

TEST(Fleetnet, RunFleetOverTcpPoolMatchesSerialRows)
{
    TempDir cache;
    RemotePool pool;
    std::vector<std::thread> workers;
    for (int i = 0; i < 2; ++i)
        workers.emplace_back(
            [&] { core::runFleetWorker("127.0.0.1", pool.port(), 1); });
    ASSERT_TRUE(waitFor([&] { return pool.connectedWorkers() == 2; }));

    core::FleetOptions opts;
    opts.injections = 2;
    opts.seed = 11;
    opts.shardSlots = 5; // several shards, so both workers serve
    opts.cacheDir = cache.str();
    opts.pool = &pool;
    opts.remoteGraceSec = 10;
    const core::FleetResult result = core::runFleet(opts);

    const std::vector<FaultCampaignRow> want =
        core::faultCampaign(2, 11, 2, true);
    const ShardParams params = core::shardParams(
        2, 11, 0, uint64_t{want.size()} * 2, {});
    EXPECT_EQ(core::serializeShardRecord(params, result.rows),
              core::serializeShardRecord(params, want));

    EXPECT_GT(result.stats.shards, 1u);
    EXPECT_EQ(result.stats.remoteShards, result.stats.shards);
    EXPECT_EQ(result.stats.inProcessShards, 0u);
    EXPECT_EQ(result.stats.quarantinedWorkers, 0u);
    EXPECT_FALSE(result.stats.halted);

    // Shutdown Byes the idle workers; both loops return.
    pool.shutdown();
    for (std::thread &w : workers)
        w.join();
}

} // namespace
