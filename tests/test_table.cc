/**
 * @file
 * Table renderer tests: alignment, numeric right-justification, header
 * rule, and the cell helpers.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/table.hh"

namespace {

using namespace risc1::core;

TEST(Table, AlignsColumnsAndRightJustifiesNumbers)
{
    Table table({"name", "value"});
    table.row({"alpha", "7"});
    table.row({"b", "1234"});
    const std::string out = table.str();

    // Header, rule, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
    // The rule is dashes spanning the width.
    EXPECT_NE(out.find("-----"), std::string::npos);
    // Numbers right-align: "7" is padded to the width of "value".
    EXPECT_NE(out.find("    7"), std::string::npos);
    // Text left-aligns.
    EXPECT_NE(out.find("alpha"), std::string::npos);
}

TEST(Table, RowsAccessorCounts)
{
    Table table({"a"});
    EXPECT_EQ(table.rows(), 0u);
    table.row({"x"});
    table.row({"y"});
    EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, CellHelpers)
{
    EXPECT_EQ(cell(uint64_t{42}), "42");
    EXPECT_EQ(cell(3.14159, 2), "3.14");
    EXPECT_EQ(cell(3.14159, 4), "3.1416");
    EXPECT_EQ(cell(100.0, 0), "100");
}

TEST(Table, WideCellsStretchTheColumn)
{
    Table table({"h"});
    table.row({"wider-than-header"});
    const std::string out = table.str();
    // The rule must cover the widest cell.
    const size_t rule_start = out.find('\n') + 1;
    const size_t rule_end = out.find('\n', rule_start);
    EXPECT_EQ(rule_end - rule_start,
              std::string("wider-than-header").size());
}

} // namespace
