/**
 * @file
 * Robustness fuzzing: garbage inputs must produce diagnostics or clean
 * faults — never crashes, hangs, or panics. Deterministic seeds keep
 * failures reproducible.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "isa/disasm.hh"
#include "sim/cpu.hh"
#include "support/rng.hh"
#include "vax/cpu.hh"

namespace {

using namespace risc1;

// ---- assembler fuzz -----------------------------------------------------

/** Random printable garbage, newline-structured. */
std::string
garbageSource(Rng &rng)
{
    static const char charset[] =
        "abcdefghijklmnopqrstuvwxyz0123456789 ,:()+-.#;\"'rx_";
    std::string src;
    const unsigned lines = 1 + static_cast<unsigned>(rng.below(30));
    for (unsigned l = 0; l < lines; ++l) {
        const unsigned len = static_cast<unsigned>(rng.below(60));
        for (unsigned i = 0; i < len; ++i)
            src += charset[rng.below(sizeof(charset) - 1)];
        src += '\n';
    }
    return src;
}

/** Token-soup: syntactically plausible fragments in random orders. */
std::string
tokenSoup(Rng &rng)
{
    static const char *frags[] = {
        "add",  "sub",   "ldl",   "stl",    "jmp",    "callr", "ret",
        "mov",  "cmp",   "b",     "beq",    "halt",   "ldhi",  "push",
        "r1",   "r31",   "r0",    "sp",     "ra",     "out3",  "alw",
        "eq",   "(r2)4", "(r0)",  "0x1000", "-1",     "8191",  "-8192",
        ".org", ".word", ".equ",  ".ascii", "\"hi\"", "label", "label:",
        ",",    ":",     "hi13",  "lo13",   "(",      ")",     "+",
        "1234", "'a'",   ".byte", "nop",
    };
    std::string src;
    const unsigned lines = 1 + static_cast<unsigned>(rng.below(25));
    for (unsigned l = 0; l < lines; ++l) {
        const unsigned toks = static_cast<unsigned>(rng.below(7));
        for (unsigned i = 0; i < toks; ++i) {
            src += frags[rng.below(std::size(frags))];
            src += rng.chance(1, 3) ? "" : " ";
        }
        src += '\n';
    }
    return src;
}

class AsmFuzz : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(AsmFuzz, GarbageNeverCrashes)
{
    Rng rng(GetParam() * 1337 + 1);
    for (int i = 0; i < 300; ++i) {
        assembler::AsmResult result =
            assembler::assemble(garbageSource(rng));
        // Either it assembled (unlikely) or produced diagnostics; both
        // are fine — reaching here without crashing is the assertion.
        if (!result.ok()) {
            EXPECT_FALSE(result.errors.empty());
        }
    }
}

TEST_P(AsmFuzz, TokenSoupNeverCrashes)
{
    Rng rng(GetParam() * 7331 + 5);
    for (int i = 0; i < 300; ++i) {
        assembler::AsmResult result = assembler::assemble(tokenSoup(rng));
        if (!result.ok()) {
            EXPECT_FALSE(result.errors.empty());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsmFuzz, ::testing::Range(uint64_t{0}, uint64_t{4}));

// ---- simulator fuzz --------------------------------------------------------

class CpuFuzz : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(CpuFuzz, RandomMemoryImagesStopCleanly)
{
    Rng rng(GetParam() * 97 + 11);
    for (int trial = 0; trial < 40; ++trial) {
        sim::CpuOptions opts;
        opts.maxInstructions = 20000;
        sim::Cpu cpu(opts);

        assembler::Program empty;
        empty.entry = 0x1000;
        cpu.load(empty);
        for (uint32_t addr = 0x1000; addr < 0x1400; addr += 4)
            cpu.memory().poke32(addr, static_cast<uint32_t>(rng.next()));

        auto result = cpu.run();
        // Any stop reason is acceptable; crashing or hanging is not.
        EXPECT_TRUE(result.reason == sim::StopReason::Halted ||
                    result.reason == sim::StopReason::Fault ||
                    result.reason == sim::StopReason::InstLimit);
        if (result.reason == sim::StopReason::Fault) {
            EXPECT_FALSE(result.message.empty());
        }
    }
}

TEST_P(CpuFuzz, RandomVaxImagesStopCleanly)
{
    Rng rng(GetParam() * 89 + 3);
    for (int trial = 0; trial < 40; ++trial) {
        vax::VaxCpuOptions opts;
        opts.maxInstructions = 20000;
        vax::VaxCpu cpu(opts);

        vax::VaxProgram prog;
        prog.base = 0x1000;
        prog.entry = 0x1000;
        prog.bytes.resize(1024);
        for (auto &b : prog.bytes)
            b = static_cast<uint8_t>(rng.next());
        cpu.load(prog);

        auto result = cpu.run();
        EXPECT_TRUE(result.reason == sim::StopReason::Halted ||
                    result.reason == sim::StopReason::Fault ||
                    result.reason == sim::StopReason::InstLimit);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpuFuzz, ::testing::Range(uint64_t{0}, uint64_t{3}));

// ---- round-trip under fuzz ----------------------------------------------------

TEST(DisasmFuzz, EveryWordEitherDecodesOrRendersAsData)
{
    Rng rng(2024);
    for (int i = 0; i < 20000; ++i) {
        const auto word = static_cast<uint32_t>(rng.next());
        const isa::DecodeResult dec = isa::decode(word);
        if (dec.ok) {
            // Decodable words re-encode to themselves.
            EXPECT_EQ(isa::encode(dec.inst), word);
        }
    }
}

} // namespace
