/**
 * @file
 * Precise-trap tests: guest programs catching faults through the trap
 * vector (misaligned load emulation, illegal-opcode skip), the
 * no-vector fallback with crash diagnostics, the cycle watchdog, the
 * trap-storm guard, and snapshot/restore taken mid-trap.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "sim/cpu.hh"

namespace {

using namespace risc1;
using assembler::assembleOrDie;

/**
 * A guest that performs a misaligned 32-bit load and a handler that
 * emulates it with byte loads. The handler's r26..r31 alias the
 * faulter's r10..r15 (the trap push makes the handler the faulter's
 * callee), so the emulated value lands exactly where the load would
 * have put it; `retint (r24)0` then skips the faulting instruction.
 */
const char *MisalignedWithHandler = R"(
        .entry main
trap:   stl   r16, (r0)896    ; record cause
        stl   r17, (r0)900    ; record faulting address
        ldbu  (r17)0, r20     ; emulate the unaligned word load
        ldbu  (r17)1, r21
        sll   r21, 8, r21
        or    r20, r21, r20
        ldbu  (r17)2, r21
        sll   r21, 16, r21
        or    r20, r21, r20
        ldbu  (r17)3, r21
        sll   r21, 24, r21
        or    r20, r21, r20
        mov   r20, r26        ; faulter's r10
        retint (r24)0         ; resume past the faulting load
main:   li    0x33221100, r20
        stl   r20, (r0)800
        li    0x77665544, r20
        stl   r20, (r0)804
        ldl   (r0)802, r10    ; misaligned: traps
        stl   r10, (r0)808
        halt
)";

TEST(Traps, GuestCatchesMisalignedLoadAndResumes)
{
    assembler::Program prog = assembleOrDie(MisalignedWithHandler);
    sim::CpuOptions opts;
    opts.trapVector = *prog.symbol("trap");
    sim::Cpu cpu(opts);
    cpu.load(prog);

    auto result = cpu.run();
    ASSERT_TRUE(result.halted()) << result.message;
    EXPECT_EQ(cpu.stats().trapsTaken, 1u);
    // The emulated unaligned load produced the right bytes.
    EXPECT_EQ(cpu.memory().peek32(808), 0x55443322u);
    EXPECT_EQ(cpu.memory().peek32(896),
              static_cast<uint32_t>(isa::TrapCause::MisalignedAccess));
    EXPECT_EQ(cpu.memory().peek32(900), 802u);
    // The trap was consumed architecturally, not reported.
    EXPECT_EQ(result.faultCause, isa::TrapCause::None);
    EXPECT_TRUE(result.crashReport.empty());
}

TEST(Traps, GuestCatchesIllegalOpcodeAndSkips)
{
    assembler::Program prog = assembleOrDie(R"(
        .entry main
trap:   stl   r16, (r0)896
        retint (r24)0         ; skip the undecodable word
main:   mov   7, r16
        .word 0x00000000      ; no such opcode
        stl   r16, (r0)800
        halt
)");
    sim::CpuOptions opts;
    opts.trapVector = *prog.symbol("trap");
    sim::Cpu cpu(opts);
    cpu.load(prog);

    auto result = cpu.run();
    ASSERT_TRUE(result.halted()) << result.message;
    EXPECT_EQ(cpu.stats().trapsTaken, 1u);
    EXPECT_EQ(cpu.memory().peek32(896),
              static_cast<uint32_t>(isa::TrapCause::IllegalOpcode));
    EXPECT_EQ(cpu.memory().peek32(800), 7u); // r16 of the faulting
                                             // window was untouched
}

TEST(Traps, NoVectorFallsBackToFaultStopWithDiagnostics)
{
    assembler::Program prog = assembleOrDie(MisalignedWithHandler);
    sim::Cpu cpu; // no trap vector
    cpu.load(prog);

    auto result = cpu.run();
    EXPECT_EQ(result.reason, sim::StopReason::Fault);
    EXPECT_EQ(result.faultCause, isa::TrapCause::MisalignedAccess);
    EXPECT_EQ(result.faultAddr, 802u);
    EXPECT_EQ(cpu.stats().trapsTaken, 0u);
    // The crash report names the cause, the PC and the instruction.
    EXPECT_NE(result.crashReport.find("misaligned access"),
              std::string::npos)
        << result.crashReport;
    EXPECT_NE(result.crashReport.find("ldl"), std::string::npos)
        << result.crashReport;
    EXPECT_NE(result.crashReport.find("recent pcs"), std::string::npos);
    // The faulting instruction's PC is reported and precise.
    EXPECT_EQ(result.faultPc, cpu.pc());
}

TEST(Traps, WindowExhaustionIsTyped)
{
    sim::Cpu cpu;
    cpu.load(assembleOrDie("main:   ret\n"));
    auto result = cpu.run();
    EXPECT_EQ(result.reason, sim::StopReason::Fault);
    EXPECT_EQ(result.faultCause, isa::TrapCause::WindowExhausted);
}

TEST(Traps, AddressLimitFaultsOutOfRange)
{
    sim::CpuOptions opts;
    opts.memLimit = 0x01000000;
    sim::Cpu cpu(opts);
    cpu.load(assembleOrDie(R"(
main:   li    0x02000000, r16
        ldl   (r16)0, r17
        halt
)"));
    auto result = cpu.run();
    EXPECT_EQ(result.reason, sim::StopReason::Fault);
    EXPECT_EQ(result.faultCause, isa::TrapCause::OutOfRangeAddress);
    EXPECT_EQ(result.faultAddr, 0x02000000u);
}

TEST(Traps, WatchdogStopsInfiniteLoop)
{
    sim::CpuOptions opts;
    opts.watchdogCycles = 10'000;
    sim::Cpu cpu(opts);
    cpu.load(assembleOrDie(R"(
main:   b     main
)"));
    auto result = cpu.run();
    EXPECT_EQ(result.reason, sim::StopReason::Watchdog);
    EXPECT_EQ(result.faultCause, isa::TrapCause::Watchdog);
    EXPECT_LE(result.cycles, 10'000u + 16);
    EXPECT_NE(result.crashReport.find("watchdog"), std::string::npos);
}

TEST(Traps, WatchdogIsNotDeliveredToTheGuest)
{
    // Even with a trap vector configured, a watchdog expiry stops the
    // machine: a livelock guard must not depend on the guest.
    assembler::Program prog = assembleOrDie(R"(
        .entry main
trap:   retint (r25)0
main:   b     main
)");
    sim::CpuOptions opts;
    opts.trapVector = *prog.symbol("trap");
    opts.watchdogCycles = 10'000;
    sim::Cpu cpu(opts);
    cpu.load(prog);
    auto result = cpu.run();
    EXPECT_EQ(result.reason, sim::StopReason::Watchdog);
    EXPECT_EQ(cpu.stats().trapsTaken, 0u);
}

TEST(Traps, TrapStormStopsInsteadOfSpinning)
{
    // The vector points at a misaligned address: delivery succeeds but
    // the handler's first fetch faults with no instruction retired —
    // the storm guard must convert this into a hard stop.
    assembler::Program prog = assembleOrDie(MisalignedWithHandler);
    sim::CpuOptions opts;
    opts.trapVector = 2; // misaligned handler entry
    sim::Cpu cpu(opts);
    cpu.load(prog);
    auto result = cpu.run();
    EXPECT_EQ(result.reason, sim::StopReason::Fault);
    EXPECT_EQ(result.faultCause, isa::TrapCause::MisalignedAccess);
}

TEST(Traps, SnapshotRestoreRoundTripsMidTrap)
{
    assembler::Program prog = assembleOrDie(MisalignedWithHandler);
    sim::CpuOptions opts;
    opts.trapVector = *prog.symbol("trap");

    // Reference: uninterrupted run.
    sim::Cpu reference(opts);
    reference.load(prog);
    auto ref_result = reference.run();
    ASSERT_TRUE(ref_result.halted());

    // Walk a second machine into the middle of the trap handler.
    sim::Cpu cpu(opts);
    cpu.load(prog);
    uint64_t bound = 1;
    while (cpu.stats().trapsTaken == 0 && !cpu.halted())
        cpu.runUntil(bound++);
    ASSERT_EQ(cpu.stats().trapsTaken, 1u);
    cpu.runUntil(cpu.stats().instructions + 3); // deeper into handler
    ASSERT_FALSE(cpu.interruptsEnabled());      // really mid-trap

    const sim::Snapshot snap = cpu.snapshot();

    // Trash the machine, restore, finish.
    cpu.setReg(20, 0xdeadbeef);
    cpu.memory().poke32(808, 0x55555555);
    cpu.setPc(0x4000);
    cpu.restore(snap);

    auto result = cpu.run();
    ASSERT_TRUE(result.halted()) << result.message;
    EXPECT_EQ(cpu.memory().peek32(808), 0x55443322u);
    EXPECT_EQ(result.cycles, ref_result.cycles);
    EXPECT_EQ(cpu.stats().instructions,
              reference.stats().instructions);
}

TEST(Traps, RunUntilPausesAndResumes)
{
    assembler::Program prog = assembleOrDie(MisalignedWithHandler);
    sim::Cpu cpu;
    cpu.load(prog);
    auto paused = cpu.runUntil(3);
    EXPECT_EQ(paused.reason, sim::StopReason::Paused);
    EXPECT_EQ(paused.instructions, 3u);
    auto result = cpu.run(); // continues to the (unhandled) fault
    EXPECT_EQ(result.reason, sim::StopReason::Fault);
}

} // namespace
