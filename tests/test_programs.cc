/**
 * @file
 * Integration tests over the sample programs in programs/: every .s
 * assembles and runs to a halt with the documented result; every .tc
 * compiles and agrees across both machines.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "asm/assembler.hh"
#include "cc/compiler.hh"
#include "sim/cpu.hh"
#include "vax/cpu.hh"

namespace {

using namespace risc1;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path << " (run tests from the repo root "
                              "or build dir)";
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** programs/ relative to the test binary (build/tests/..). */
std::string
programsDir()
{
    for (const char *candidate :
         {"programs", "../programs", "../../programs"}) {
        std::ifstream probe(std::string(candidate) + "/factorial.s");
        if (probe.good())
            return candidate;
    }
    return "programs";
}

TEST(Programs, FactorialAssemblesAndComputes)
{
    sim::Cpu cpu;
    cpu.load(assembler::assembleOrDie(
        slurp(programsDir() + "/factorial.s")));
    auto result = cpu.run();
    ASSERT_TRUE(result.halted()) << result.message;
    EXPECT_EQ(cpu.memory().peek32(3840), 3628800u); // 10!
}

TEST(Programs, MemdumpAssemblesAndHalts)
{
    sim::Cpu cpu;
    cpu.load(assembler::assembleOrDie(
        slurp(programsDir() + "/memdump.s")));
    auto result = cpu.run();
    ASSERT_TRUE(result.halted()) << result.message;
    EXPECT_NE(cpu.memory().peek32(3840), 0u);
}

/** Run a .tc file on both machines; they must agree. */
uint32_t
bothMachines(const std::string &path)
{
    const std::string src = slurp(path);
    cc::RiscCompileResult risc_cc = cc::compileToRiscAsm(src);
    EXPECT_TRUE(risc_cc.ok) << risc_cc.error;
    cc::VaxCompileResult vax_cc = cc::compileToVax(src);
    EXPECT_TRUE(vax_cc.ok) << vax_cc.error;

    sim::Cpu risc;
    risc.load(assembler::assembleOrDie(risc_cc.assembly));
    EXPECT_TRUE(risc.run().halted());
    vax::VaxCpu vaxc;
    vaxc.load(vax_cc.program);
    EXPECT_TRUE(vaxc.run().halted());

    const uint32_t a = risc.memory().peek32(cc::CcResultAddr);
    const uint32_t b = vaxc.memory().peek32(cc::CcResultAddr);
    EXPECT_EQ(a, b) << path;
    return a;
}

TEST(Programs, CollatzAgreesAcrossMachines)
{
    // Longest chain below 400 starts at 327 with 143 steps.
    EXPECT_EQ(bothMachines(programsDir() + "/collatz.tc"),
              327u * 1000 + 143);
}

TEST(Programs, HanoiAgreesAcrossMachines)
{
    EXPECT_EQ(bothMachines(programsDir() + "/hanoi.tc"), 4095u);
}

} // namespace
