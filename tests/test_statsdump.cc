/**
 * @file
 * Statistics-dump formatting tests: line shape, prefixing, value
 * fidelity against a real run on each machine.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "asm/assembler.hh"
#include "sim/cpu.hh"
#include "support/logging.hh"
#include "sim/statsdump.hh"
#include "vax/statsdump.hh"
#include "workloads/workload.hh"

namespace {

using namespace risc1;

TEST(StatsDump, LineFormat)
{
    const std::string line = sim::statsLine("risc1", "cycles", 42,
                                            "machine cycles");
    EXPECT_NE(line.find("risc1.cycles"), std::string::npos);
    EXPECT_NE(line.find("42"), std::string::npos);
    EXPECT_NE(line.find("# machine cycles"), std::string::npos);
    EXPECT_EQ(line.back(), '\n');

    // Fractions keep four digits.
    const std::string frac = sim::statsLine("x", "cpi", 1.25, "c");
    EXPECT_NE(frac.find("1.2500"), std::string::npos);
}

TEST(StatsDump, RiscDumpMatchesRun)
{
    sim::Cpu cpu;
    cpu.load(assembler::assembleOrDie(R"(
_start: mov  5, r16
loop:   subs r16, 1, r16
        bne  loop
        halt
)"));
    ASSERT_TRUE(cpu.run().halted());
    const std::string dump = sim::formatStats(cpu.stats());
    EXPECT_NE(dump.find(strprintf(
                  "%llu", static_cast<unsigned long long>(
                              cpu.stats().instructions))),
              std::string::npos);
    EXPECT_NE(dump.find("risc1.window_overflows"), std::string::npos);
    EXPECT_NE(dump.find("risc1.branches_taken"), std::string::npos);
    // Custom prefix propagates.
    EXPECT_NE(sim::formatStats(cpu.stats(), "abc").find("abc.cycles"),
              std::string::npos);
}

TEST(StatsDump, VaxDumpMatchesRun)
{
    const auto *wl = workloads::findWorkload("fibonacci");
    ASSERT_NE(wl, nullptr);
    vax::VaxCpu cpu;
    cpu.load(wl->buildVax(6));
    ASSERT_TRUE(cpu.run().halted());
    const std::string dump = vax::formatStats(cpu.stats());
    EXPECT_NE(dump.find("vax80.calls"), std::string::npos);
    EXPECT_NE(dump.find("vax80.saved_regs"), std::string::npos);
    EXPECT_NE(dump.find(strprintf(
                  "%llu", static_cast<unsigned long long>(
                              cpu.stats().calls))),
              std::string::npos);
}

} // namespace
