/**
 * @file
 * GDB-stub tests, bottom up: RSP framing (checksum corruption,
 * truncation, oversize, escapes — every malformed input must yield the
 * right typed error and leave the decoder usable), the checkpoint
 * ring, time travel (forward/backward state equivalence, breakpoints),
 * replay-file round trips, and the packet dispatcher driven without a
 * transport plus one full serve() session over a loopback pair.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <thread>

#include "debug/gdbstub.hh"
#include "debug/replay.hh"
#include "debug/rsp.hh"
#include "debug/timetravel.hh"
#include "debug/transport.hh"
#include "sim/checkpoint.hh"
#include "sim/cpu.hh"
#include "sim/snapshot.hh"
#include "workloads/workload.hh"

namespace {

using namespace risc1;
using debug::FrameDecoder;
using debug::RspError;

// ---- hex helpers --------------------------------------------------------

TEST(RspHex, EncodeDecodeRoundTrip)
{
    EXPECT_EQ(debug::hexEncode("OK"), "4f4b");
    EXPECT_EQ(debug::hexDecode("4f4b"), "OK");
    EXPECT_EQ(debug::hexWordLe(0x00001000), "00100000");
    EXPECT_EQ(debug::parseHexWordLe("00100000"), 0x00001000u);
    EXPECT_EQ(debug::parseHex("3fff"), 0x3fffu);
}

TEST(RspHex, MalformedFieldsThrowTyped)
{
    try {
        debug::parseHex("12g4");
        FAIL() << "BadHex expected";
    } catch (const RspError &err) {
        EXPECT_EQ(err.kind(), RspError::Kind::BadHex);
    }
    try {
        debug::parseHex("");
        FAIL() << "Malformed expected";
    } catch (const RspError &err) {
        EXPECT_EQ(err.kind(), RspError::Kind::Malformed);
    }
    EXPECT_THROW(debug::hexDecode("abc"), RspError); // odd length
}

// ---- framing ------------------------------------------------------------

TEST(RspFraming, FrameAndDecodeRoundTrip)
{
    const std::string wire = debug::frame("OK");
    EXPECT_EQ(wire, "$OK#9a");

    FrameDecoder decoder;
    decoder.push(wire.data(), wire.size());
    EXPECT_EQ(decoder.next(), FrameDecoder::Event::Packet);
    EXPECT_EQ(decoder.payload(), "OK");
    EXPECT_EQ(decoder.next(), FrameDecoder::Event::NeedMore);
}

TEST(RspFraming, EscapedBytesRoundTrip)
{
    const std::string payload = "a$b#c}d*e";
    const std::string wire = debug::frame(payload);
    FrameDecoder decoder;
    decoder.push(wire.data(), wire.size());
    ASSERT_EQ(decoder.next(), FrameDecoder::Event::Packet);
    EXPECT_EQ(decoder.payload(), payload);
}

TEST(RspFraming, TruncatedPacketWaitsThenCompletes)
{
    FrameDecoder decoder;
    const std::string wire = debug::frame("qSupported");
    // Feed one byte at a time: no event until the last checksum digit.
    for (size_t i = 0; i + 1 < wire.size(); ++i) {
        decoder.push(&wire[i], 1);
        EXPECT_EQ(decoder.next(), FrameDecoder::Event::NeedMore)
            << "after byte " << i;
    }
    decoder.push(&wire.back(), 1);
    ASSERT_EQ(decoder.next(), FrameDecoder::Event::Packet);
    EXPECT_EQ(decoder.payload(), "qSupported");
}

TEST(RspFraming, ChecksumCorruptionThrowsAndDecoderSurvives)
{
    FrameDecoder decoder;
    const std::string bad = "$OK#00"; // real checksum is 9a
    const std::string good = debug::frame("g");
    decoder.push(bad.data(), bad.size());
    decoder.push(good.data(), good.size());
    try {
        decoder.next();
        FAIL() << "BadChecksum expected";
    } catch (const RspError &err) {
        EXPECT_EQ(err.kind(), RspError::Kind::BadChecksum);
    }
    // The bad frame was consumed; the next one decodes normally.
    ASSERT_EQ(decoder.next(), FrameDecoder::Event::Packet);
    EXPECT_EQ(decoder.payload(), "g");
}

TEST(RspFraming, AckNakInterruptAndNoise)
{
    FrameDecoder decoder;
    const std::string stream = "x+y-\x03" + debug::frame("?");
    decoder.push(stream.data(), stream.size());
    EXPECT_EQ(decoder.next(), FrameDecoder::Event::Ack);
    EXPECT_EQ(decoder.next(), FrameDecoder::Event::Nak);
    EXPECT_EQ(decoder.next(), FrameDecoder::Event::Interrupt);
    ASSERT_EQ(decoder.next(), FrameDecoder::Event::Packet);
    EXPECT_EQ(decoder.payload(), "?");
}

TEST(RspFraming, OversizedFrameThrowsTyped)
{
    FrameDecoder decoder;
    const std::string huge =
        "$" + std::string(debug::MaxPacketBytes + 1, 'a');
    decoder.push(huge.data(), huge.size());
    try {
        decoder.next();
        FAIL() << "Oversized expected";
    } catch (const RspError &err) {
        EXPECT_EQ(err.kind(), RspError::Kind::Oversized);
    }
}

// ---- checkpoint ring ----------------------------------------------------

TEST(CheckpointRing, CapturesAtBoundariesAndEvicts)
{
    sim::Cpu cpu;
    cpu.load(workloads::buildRisc(*workloads::findWorkload("fibonacci"),
                                  10));
    sim::CheckpointRing ring({/*interval=*/100, /*capacity=*/3});
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.baseInstructions(), UINT64_MAX);

    for (int i = 0; i < 5; ++i) {
        ring.capture(cpu);
        ASSERT_EQ(cpu.runUntil(cpu.stats().instructions + 100).reason,
                  sim::StopReason::Paused);
    }
    // 5 captures, capacity 3: base slides to the 3rd-newest.
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.baseInstructions(), 200u);
    EXPECT_EQ(ring.newestInstructions(), 400u);
    EXPECT_EQ(ring.nextBoundary(400), 500u);
    EXPECT_EQ(ring.nextBoundary(433), 500u);

    const sim::CheckpointRing::Checkpoint *ck =
        ring.latestAtOrBefore(350);
    ASSERT_NE(ck, nullptr);
    EXPECT_EQ(ck->instructions, 300u);
    EXPECT_EQ(ring.latestAtOrBefore(150), nullptr); // evicted
}

// ---- time travel --------------------------------------------------------

/** Registers + pc of the current window, for state comparison. */
std::vector<uint32_t>
visibleState(const sim::Cpu &cpu)
{
    std::vector<uint32_t> v;
    for (unsigned r = 0; r < 32; ++r)
        v.push_back(cpu.reg(r));
    v.push_back(cpu.pc());
    return v;
}

sim::Cpu &
loadedCpu(sim::Cpu &cpu, const char *name = "fibonacci",
          uint64_t scale = 10)
{
    cpu.load(workloads::buildRisc(*workloads::findWorkload(name), scale));
    return cpu;
}

TEST(TimeTravel, StepBackReachesTheSameStateAsAFreshRun)
{
    sim::Cpu cpu;
    debug::TimeTravel tt(loadedCpu(cpu), {/*interval=*/50, 64});
    tt.prime();
    for (int i = 0; i < 500; ++i)
        ASSERT_EQ(tt.stepForward().kind, debug::StopKind::Step);
    ASSERT_EQ(tt.index(), 500u);

    const debug::Stop stop = tt.stepBack(123);
    EXPECT_EQ(stop.kind, debug::StopKind::Step);
    EXPECT_EQ(tt.index(), 377u);

    sim::Cpu ref;
    loadedCpu(ref);
    ASSERT_EQ(ref.runUntil(377).reason, sim::StopReason::Paused);
    EXPECT_EQ(visibleState(cpu), visibleState(ref));
}

TEST(TimeTravel, StepBackPastHistoryReportsHistoryBegin)
{
    sim::Cpu cpu;
    debug::TimeTravel tt(loadedCpu(cpu), {50, 64});
    tt.prime();
    for (int i = 0; i < 10; ++i)
        tt.stepForward();
    EXPECT_EQ(tt.stepBack(100).kind, debug::StopKind::HistoryBegin);
    EXPECT_EQ(tt.index(), 0u);
}

TEST(TimeTravel, BreakpointParksAtThePatchedPcWithCleanMemory)
{
    // Find the pc after 200 instructions, then continue to it from
    // scratch via a breakpoint.
    sim::Cpu probe;
    loadedCpu(probe);
    ASSERT_EQ(probe.runUntil(200).reason, sim::StopReason::Paused);
    const uint32_t bp = probe.pc();
    const uint32_t original = probe.memory().peek32(bp);

    sim::Cpu cpu;
    debug::TimeTravel tt(loadedCpu(cpu), {1000, 16});
    tt.prime();
    ASSERT_TRUE(tt.addBreakpoint(bp));
    const debug::Stop stop = tt.continueForward();
    EXPECT_EQ(stop.kind, debug::StopKind::Breakpoint);
    EXPECT_EQ(stop.pc, bp);
    EXPECT_EQ(cpu.pc(), bp);
    // Stopped: memory must hold the original word, not the patch.
    EXPECT_EQ(cpu.memory().peek32(bp), original);

    // Continue from the breakpoint to completion and get the right
    // answer — the parked instruction executes exactly once.
    ASSERT_TRUE(tt.removeBreakpoint(bp));
    const debug::Stop done = tt.continueForward();
    EXPECT_EQ(done.kind, debug::StopKind::Halted);
    EXPECT_EQ(cpu.memory().peek32(workloads::ResultAddr),
              workloads::findWorkload("fibonacci")->expected(10));
}

TEST(TimeTravel, ContinueBackReturnsToTheLastBreakpointHit)
{
    sim::Cpu probe;
    loadedCpu(probe);
    ASSERT_EQ(probe.runUntil(150).reason, sim::StopReason::Paused);
    const uint32_t bp = probe.pc();

    sim::Cpu cpu;
    debug::TimeTravel tt(loadedCpu(cpu), {40, 64});
    tt.prime();
    ASSERT_TRUE(tt.addBreakpoint(bp));
    const debug::Stop first = tt.continueForward();
    ASSERT_EQ(first.kind, debug::StopKind::Breakpoint);
    const uint64_t first_hit = tt.index();

    // Run forward past the hit; the bp pc may recur (loops), so the
    // expected reverse-continue target is the LAST hit strictly before
    // the new position — compute it with the reference interpreter.
    for (int i = 0; i < 37; ++i)
        tt.stepForward();
    const uint64_t here = tt.index();
    sim::Cpu ref;
    loadedCpu(ref);
    uint64_t expected_hit = 0;
    for (uint64_t n = 0; n < here; ++n) {
        if (ref.pc() == bp)
            expected_hit = n;
        ref.step();
    }
    ASSERT_GE(expected_hit, first_hit);

    const debug::Stop back = tt.continueBack();
    EXPECT_EQ(back.kind, debug::StopKind::Breakpoint);
    EXPECT_EQ(tt.index(), expected_hit);
    EXPECT_EQ(cpu.pc(), bp);
}

TEST(TimeTravel, HaltIsSticky)
{
    sim::Cpu cpu;
    debug::TimeTravel tt(loadedCpu(cpu, "fibonacci", 3), {1000, 8});
    tt.prime();
    EXPECT_EQ(tt.continueForward().kind, debug::StopKind::Halted);
    EXPECT_EQ(tt.continueForward().kind, debug::StopKind::Halted);
    EXPECT_EQ(tt.stepForward().kind, debug::StopKind::Halted);
    // ...but reverse execution still works from the end state.
    EXPECT_EQ(tt.stepBack(5).kind, debug::StopKind::Step);
}

// ---- replay files -------------------------------------------------------

TEST(Replay, RoundTripsThroughBytes)
{
    sim::Cpu cpu;
    loadedCpu(cpu);
    ASSERT_EQ(cpu.runUntil(100).reason, sim::StopReason::Paused);

    debug::ReplayFile replay;
    replay.options = cpu.options();
    replay.snapshot =
        sim::serializeSnapshot(cpu.snapshot(), replay.options);
    replay.snapshotInstructions = 100;
    replay.targetInstructions = 400;
    replay.targetPc = cpu.pc();
    replay.note = "unit-test replay";

    const std::vector<uint8_t> bytes = debug::serializeReplay(replay);
    const debug::ReplayFile back = debug::deserializeReplay(bytes);
    EXPECT_EQ(back.snapshot, replay.snapshot);
    EXPECT_EQ(back.snapshotInstructions, 100u);
    EXPECT_EQ(back.targetInstructions, 400u);
    EXPECT_EQ(back.note, "unit-test replay");
    EXPECT_EQ(back.options.memLimit, replay.options.memLimit);
}

TEST(Replay, MalformedInputsThrowTyped)
{
    sim::Cpu cpu;
    loadedCpu(cpu);
    debug::ReplayFile replay;
    replay.options = cpu.options();
    replay.snapshot =
        sim::serializeSnapshot(cpu.snapshot(), replay.options);
    std::vector<uint8_t> bytes = debug::serializeReplay(replay);

    try {
        debug::deserializeReplay(
            {bytes.begin(), bytes.begin() + bytes.size() / 2});
        FAIL() << "Truncated expected";
    } catch (const debug::ReplayError &err) {
        EXPECT_EQ(err.kind(), debug::ReplayError::Kind::Truncated);
    }

    std::vector<uint8_t> wrong_magic = bytes;
    wrong_magic[0] ^= 0xff;
    try {
        debug::deserializeReplay(wrong_magic);
        FAIL() << "BadMagic expected";
    } catch (const debug::ReplayError &err) {
        EXPECT_EQ(err.kind(), debug::ReplayError::Kind::BadMagic);
    }

    // Corrupt the embedded snapshot's header (its first byte): the
    // validation pass must surface it as a typed Corrupt error.
    std::vector<uint8_t> corrupt = bytes;
    corrupt[bytes.size() - replay.snapshot.size()] ^= 0xff;
    try {
        debug::deserializeReplay(corrupt);
        FAIL() << "Corrupt expected";
    } catch (const debug::ReplayError &err) {
        EXPECT_EQ(err.kind(), debug::ReplayError::Kind::Corrupt);
    }
}

// ---- the packet dispatcher ----------------------------------------------

class StubTest : public ::testing::Test
{
  protected:
    StubTest() : tt_(loadedCpu(cpu_), {100, 64})
    {
        tt_.prime();
        stub_ = std::make_unique<debug::GdbStub>(tt_);
    }

    sim::Cpu cpu_;
    debug::TimeTravel tt_;
    std::unique_ptr<debug::GdbStub> stub_;
};

TEST_F(StubTest, QSupportedAdvertisesReverseExecution)
{
    const std::string reply = stub_->handle("qSupported:swbreak+");
    EXPECT_NE(reply.find("ReverseStep+"), std::string::npos);
    EXPECT_NE(reply.find("ReverseContinue+"), std::string::npos);
    EXPECT_NE(reply.find("QStartNoAckMode+"), std::string::npos);
}

TEST_F(StubTest, UnknownCommandsGetEmptyRepliesAndSessionSurvives)
{
    EXPECT_EQ(stub_->handle("vMustReplyEmpty"), "");
    EXPECT_EQ(stub_->handle("Xnope"), "");
    EXPECT_EQ(stub_->handle("_bogus"), "");
    // Still alive and correct afterwards:
    EXPECT_EQ(stub_->handle("?"), "S05");
    EXPECT_FALSE(stub_->killRequested());
}

TEST_F(StubTest, MalformedArgumentsGetErrorsNotDeath)
{
    EXPECT_EQ(stub_->handle("mzz,4"), "E02");    // bad hex address
    EXPECT_EQ(stub_->handle("m1000"), "E01");    // missing length
    EXPECT_EQ(stub_->handle("M1000,4:zz"), "E02");
    EXPECT_EQ(stub_->handle("M1000,8:00"), "E01"); // length mismatch
    EXPECT_EQ(stub_->handle("P5"), "E01");         // missing =value
    // The machine is untouched and the session continues.
    EXPECT_EQ(tt_.index(), 0u);
    EXPECT_EQ(stub_->handle("?"), "S05");
}

TEST_F(StubTest, RegistersReadMatchesTheMachine)
{
    const std::string g = stub_->handle("g");
    ASSERT_EQ(g.size(), 33u * 8);
    for (unsigned r = 0; r < 32; ++r)
        EXPECT_EQ(debug::parseHexWordLe(g.substr(r * 8, 8)),
                  cpu_.reg(r)) << "r" << r;
    EXPECT_EQ(debug::parseHexWordLe(g.substr(32 * 8, 8)), cpu_.pc());
}

TEST_F(StubTest, MemoryWriteReadRoundTrip)
{
    EXPECT_EQ(stub_->handle("M2000,4:deadbeef"), "OK");
    EXPECT_EQ(stub_->handle("m2000,4"), "deadbeef");
    EXPECT_EQ(cpu_.memory().peek8(0x2000), 0xde);
}

TEST_F(StubTest, StepAndBreakpointFlow)
{
    const uint32_t entry = cpu_.pc();
    EXPECT_EQ(stub_->handle("s"), "S05");
    EXPECT_EQ(tt_.index(), 1u);

    // Breakpoints: set, hit (with swbreak negotiated), remove.
    stub_->handle("qSupported:swbreak+");
    sim::Cpu probe;
    loadedCpu(probe);
    ASSERT_EQ(probe.runUntil(50).reason, sim::StopReason::Paused);
    const uint32_t bp = probe.pc();
    char zpkt[32];
    std::snprintf(zpkt, sizeof zpkt, "Z0,%x,4", bp);
    EXPECT_EQ(stub_->handle(zpkt), "OK");
    EXPECT_EQ(stub_->handle("c"), "T05swbreak:;");
    EXPECT_EQ(cpu_.pc(), bp);

    // Misaligned breakpoint address is rejected.
    EXPECT_EQ(stub_->handle("Z0,1001,4"), "E02");
    (void)entry;
}

TEST_F(StubTest, ReverseStepLandsOnThePriorPc)
{
    for (int i = 0; i < 20; ++i)
        stub_->handle("s");
    sim::Cpu ref;
    loadedCpu(ref);
    ASSERT_EQ(ref.runUntil(19).reason, sim::StopReason::Paused);

    EXPECT_EQ(stub_->handle("bs"), "S05");
    EXPECT_EQ(tt_.index(), 19u);
    EXPECT_EQ(cpu_.pc(), ref.pc());

    // Reverse past the history base reports the replay-log edge.
    EXPECT_EQ(stub_->handle("bc"), "T05replaylog:begin;");
}

TEST_F(StubTest, KillAndDetachAreReported)
{
    EXPECT_EQ(stub_->handle("D"), "OK");
    EXPECT_EQ(stub_->handle("k"), "");
    EXPECT_TRUE(stub_->killRequested());
}

// ---- one full session over a loopback transport -------------------------

/** Minimal scripted RSP client for serve() tests. */
class LoopClient
{
  public:
    explicit LoopClient(debug::Channel &channel) : ch_(channel) {}

    /** Send one framed packet and collect the reply payload. */
    std::string
    roundTrip(const std::string &payload, bool expect_ack = true)
    {
        const std::string wire = debug::frame(payload);
        ch_.send(wire.data(), wire.size());
        if (expect_ack)
            expectByte('+');
        return readPacket();
    }

    void
    sendRaw(const std::string &bytes)
    {
        ch_.send(bytes.data(), bytes.size());
    }

    void
    expectByte(char want)
    {
        char c = 0;
        ASSERT_EQ(ch_.recv(&c, 1), 1u);
        ASSERT_EQ(c, want);
    }

    std::string
    readPacket()
    {
        for (;;) {
            const FrameDecoder::Event event = decoder_.next();
            if (event == FrameDecoder::Event::Packet) {
                ch_.send("+", 1); // ack, stub ignores
                return decoder_.payload();
            }
            if (event != FrameDecoder::Event::NeedMore)
                continue; // skip acks
            char buf[512];
            const size_t got = ch_.recv(buf, sizeof(buf));
            if (got == 0)
                return {};
            decoder_.push(buf, got);
        }
    }

  private:
    debug::Channel &ch_;
    FrameDecoder decoder_;
};

TEST(StubSession, CorruptFramesGetNakAndTheSessionSurvives)
{
    auto [server_ch, client_ch] = debug::loopbackPair();
    sim::Cpu cpu;
    debug::TimeTravel tt(loadedCpu(cpu), {100, 16});
    tt.prime();
    debug::GdbStub stub(tt);

    std::thread server([&] { stub.serve(*server_ch); });
    LoopClient client(*client_ch);

    // A frame with a wrong checksum draws `-`, not a dead session.
    client.sendRaw("$g#00");
    client.expectByte('-');

    // The same session still answers a valid packet afterwards.
    const std::string g = client.roundTrip("g");
    EXPECT_EQ(g.size(), 33u * 8);

    // NAK triggers retransmission of the last reply.
    client.sendRaw("-");
    EXPECT_EQ(client.readPacket(), g);

    // Detach ends the session cleanly.
    EXPECT_EQ(client.roundTrip("D"), "OK");
    server.join();
    EXPECT_FALSE(stub.killRequested());
}

} // namespace
