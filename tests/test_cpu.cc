/**
 * @file
 * Processor-model tests: exact semantics of every instruction class,
 * flag setting, delayed transfers (pinned in explicit-slot mode),
 * window trap mechanics, PSW access, faults, and a randomized
 * differential test of the ALU against a host-side reference.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "sim/cpu.hh"
#include "sim/fault.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace {

using namespace risc1;
using assembler::AsmOptions;
using assembler::assembleOrDie;

/** Run a program in explicit-slot mode (tests write their own slots). */
sim::ExecResult
runExplicit(sim::Cpu &cpu, const std::string &src)
{
    AsmOptions opts;
    opts.autoDelaySlots = false;
    cpu.load(assembleOrDie(src, opts));
    return cpu.run();
}

/** Run with the normal auto-slot assembler. */
sim::ExecResult
runAuto(sim::Cpu &cpu, const std::string &src)
{
    cpu.load(assembleOrDie(src));
    return cpu.run();
}

// ---- ALU semantics and flags ------------------------------------------------

TEST(Alu, AddCarryAndOverflow)
{
    sim::Cpu cpu;
    auto result = runAuto(cpu, R"(
_start: mov   -1, r16
        adds  r16, 1, r17     ; 0xffffffff + 1 = 0, C=1, Z=1, V=0
        halt
)");
    ASSERT_TRUE(result.halted());
    EXPECT_EQ(cpu.reg(17), 0u);
    EXPECT_TRUE(cpu.flags().c);
    EXPECT_TRUE(cpu.flags().z);
    EXPECT_FALSE(cpu.flags().v);
    EXPECT_FALSE(cpu.flags().n);
}

TEST(Alu, SignedOverflowSetsV)
{
    sim::Cpu cpu;
    auto result = runAuto(cpu, R"(
_start: ldhi  r16, 0x3ffff    ; 0x7fffe000
        adds  r16, r16, r17   ; positive + positive -> negative
        halt
)");
    ASSERT_TRUE(result.halted());
    EXPECT_TRUE(cpu.flags().v);
    EXPECT_TRUE(cpu.flags().n);
    EXPECT_FALSE(cpu.flags().c);
}

TEST(Alu, SubBorrowConvention)
{
    sim::Cpu cpu;
    // 5 - 7: borrow -> C = 0; result negative.
    auto result = runAuto(cpu, R"(
_start: mov   5, r16
        subs  r16, 7, r17
        halt
)");
    ASSERT_TRUE(result.halted());
    EXPECT_EQ(cpu.reg(17), static_cast<uint32_t>(-2));
    EXPECT_FALSE(cpu.flags().c);
    EXPECT_TRUE(cpu.flags().n);

    // 7 - 5: no borrow -> C = 1.
    result = runAuto(cpu, R"(
_start: mov   7, r16
        subs  r16, 5, r17
        halt
)");
    ASSERT_TRUE(result.halted());
    EXPECT_TRUE(cpu.flags().c);
}

TEST(Alu, CarryChainAddcSubc)
{
    sim::Cpu cpu;
    // 64-bit add: 0xffffffff:ffffffff + 1 = 0x00000001:00000000.
    auto result = runAuto(cpu, R"(
_start: mov   -1, r16          ; low
        mov   -1, r17          ; high
        adds  r16, 1, r18      ; low sum, sets carry
        addc  r17, 0, r19      ; high sum + carry
        halt
)");
    ASSERT_TRUE(result.halted());
    EXPECT_EQ(cpu.reg(18), 0u);
    EXPECT_EQ(cpu.reg(19), 0u);

    // 64-bit subtract with borrow: 0x1:00000000 - 1.
    result = runAuto(cpu, R"(
_start: clr   r16              ; low = 0
        mov   1, r17           ; high = 1
        subs  r16, 1, r18      ; low: 0-1 -> 0xffffffff, borrow (C=0)
        subc  r17, 0, r19      ; high: 1 - 0 - borrow = 0
        halt
)");
    ASSERT_TRUE(result.halted());
    EXPECT_EQ(cpu.reg(18), 0xffffffffu);
    EXPECT_EQ(cpu.reg(19), 0u);
}

TEST(Alu, ReverseSubtract)
{
    sim::Cpu cpu;
    auto result = runAuto(cpu, R"(
_start: mov   3, r16
        subr  r16, 10, r17    ; 10 - 3
        halt
)");
    ASSERT_TRUE(result.halted());
    EXPECT_EQ(cpu.reg(17), 7u);
}

TEST(Alu, ShiftsMaskAmountAndFill)
{
    sim::Cpu cpu;
    auto result = runAuto(cpu, R"(
_start: mov   -8, r16
        srl   r16, 1, r17     ; logical: zero fill
        sra   r16, 1, r18     ; arithmetic: sign fill
        sll   r16, 1, r19
        mov   32, r20
        sll   r16, r20, r21   ; amount 32 & 31 == 0: unchanged
        halt
)");
    ASSERT_TRUE(result.halted());
    EXPECT_EQ(cpu.reg(17), 0x7ffffffcu);
    EXPECT_EQ(cpu.reg(18), static_cast<uint32_t>(-4));
    EXPECT_EQ(cpu.reg(19), static_cast<uint32_t>(-16));
    EXPECT_EQ(cpu.reg(21), static_cast<uint32_t>(-8));
}

TEST(Alu, LogicalOpsClearCarryAndOverflowUnderScc)
{
    sim::Cpu cpu;
    auto result = runAuto(cpu, R"(
_start: mov   -1, r16
        adds  r16, 1, r17     ; set C
        ands  r16, 0xff, r18  ; logical scc clears C and V
        halt
)");
    ASSERT_TRUE(result.halted());
    EXPECT_EQ(cpu.reg(18), 0xffu);
    EXPECT_FALSE(cpu.flags().c);
    EXPECT_FALSE(cpu.flags().v);
}

TEST(Alu, NonSccOpsLeaveFlagsAlone)
{
    sim::Cpu cpu;
    auto result = runAuto(cpu, R"(
_start: mov   1, r16
        cmp   r16, 1          ; Z := 1
        add   r16, 1, r16     ; no scc: Z stays
        halt
)");
    ASSERT_TRUE(result.halted());
    EXPECT_TRUE(cpu.flags().z);
}

// ---- memory access -----------------------------------------------------------

TEST(MemOps, WidthsAndExtension)
{
    sim::Cpu cpu;
    auto result = runAuto(cpu, R"(
_start: mov   data, r16
        ldbu  (r16)3, r17     ; 0x80 zero-extended
        ldbs  (r16)3, r18     ; 0x80 sign-extended
        ldsu  (r16)0, r19     ; 0xbeef zero-extended
        ldss  (r16)0, r20     ; 0xbeef sign-extended
        ldl   (r16)0, r21
        halt
        .align 4
data:   .word 0xdeadbeef
)");
    ASSERT_TRUE(result.halted()) << result.message;
    EXPECT_EQ(cpu.reg(17), 0xdeu);
    EXPECT_EQ(cpu.reg(18), 0xffffffdeu);
    EXPECT_EQ(cpu.reg(19), 0xbeefu);
    EXPECT_EQ(cpu.reg(20), 0xffffbeefu);
    EXPECT_EQ(cpu.reg(21), 0xdeadbeefu);
}

TEST(MemOps, StoreWidthsTruncate)
{
    sim::Cpu cpu;
    auto result = runAuto(cpu, R"(
_start: mov   buf, r16
        mov   0x1234567, r17
        stl   r17, (r16)0
        stb   r17, (r16)4
        sts   r17, (r16)8
        halt
        .align 4
buf:    .space 12
)");
    ASSERT_TRUE(result.halted()) << result.message;
    const uint32_t buf = *assembleOrDie(R"(
_start: mov   buf, r16
        mov   0x1234567, r17
        stl   r17, (r16)0
        stb   r17, (r16)4
        sts   r17, (r16)8
        halt
        .align 4
buf:    .space 12
)")
                              .symbol("buf");
    EXPECT_EQ(cpu.memory().peek32(buf), 0x1234567u);
    EXPECT_EQ(cpu.memory().peek8(buf + 4), 0x67u);
    EXPECT_EQ(cpu.memory().peek32(buf + 8) & 0xffff, 0x4567u);
}

TEST(MemOps, RegisterIndexAddressing)
{
    sim::Cpu cpu;
    auto result = runAuto(cpu, R"(
_start: mov   tbl, r16
        mov   8, r17
        ldl   (r16)r17, r18   ; tbl[2]
        halt
        .align 4
tbl:    .word 10, 20, 30
)");
    ASSERT_TRUE(result.halted()) << result.message;
    EXPECT_EQ(cpu.reg(18), 30u);
}

// ---- delayed transfers (explicit slots pin the architecture) -----------------

TEST(Delayed, SlotExecutesBeforeTakenBranchTarget)
{
    sim::Cpu cpu;
    auto result = runExplicit(cpu, R"(
_start: b     over
        add   r16, 1, r16     ; the slot: must execute
        add   r16, 100, r16   ; skipped
over:   jmp   alw, (r0)0
        add   r16, 10, r16    ; halt's slot also executes
)");
    ASSERT_TRUE(result.halted());
    EXPECT_EQ(cpu.reg(16), 11u);
}

TEST(Delayed, UntakenBranchStillExecutesSlot)
{
    sim::Cpu cpu;
    auto result = runExplicit(cpu, R"(
_start: cmp   r0, 1
        beq   never
        add   r16, 1, r16     ; slot
        add   r16, 2, r16     ; fall-through
        jmp   alw, (r0)0
        nop
never:  add   r16, 100, r16
        jmp   alw, (r0)0
        nop
)");
    ASSERT_TRUE(result.halted());
    EXPECT_EQ(cpu.reg(16), 3u);
}

TEST(Delayed, CallLinksCallAddressAndRetSkipsSlot)
{
    sim::Cpu cpu;
    auto result = runExplicit(cpu, R"(
_start: callr r25, f
        add   r2, 1, r2       ; call's slot (globals: window-safe)
        add   r2, 10, r2      ; return lands here
        jmp   alw, (r0)0
        nop
f:      gtlpc r16             ; not meaningful here; just a marker
        ret   (r25)8
        add   r2, 100, r2     ; ret's slot
)");
    ASSERT_TRUE(result.halted()) << result.message;
    // slot(1) + retslot(100) + landing(10)
    EXPECT_EQ(cpu.reg(2), 111u);
}

TEST(Delayed, CallSlotExecutesInCalleeWindow)
{
    sim::Cpu cpu;
    auto result = runExplicit(cpu, R"(
_start: mov   7, r16          ; caller local
        callr r25, f
        mov   5, r16          ; slot: writes the CALLEE's r16
        jmp   alw, (r0)0
        nop
f:      stl   r16, (r0)600    ; callee sees 5
        ret   (r25)8
        nop
)");
    ASSERT_TRUE(result.halted()) << result.message;
    EXPECT_EQ(cpu.memory().peek32(600), 5u);
    EXPECT_EQ(cpu.reg(16), 7u); // caller's local untouched
}

TEST(Delayed, IndexedJumpUsesRegisterTarget)
{
    sim::Cpu cpu;
    auto result = runExplicit(cpu, R"(
_start: mov   tgt, r16
        jmp   alw, (r16)0
        nop
        add   r17, 100, r17   ; skipped
tgt:    add   r17, 1, r17
        jmp   alw, (r0)0
        nop
)");
    ASSERT_TRUE(result.halted()) << result.message;
    EXPECT_EQ(cpu.reg(17), 1u);
}

// ---- PSW / misc ------------------------------------------------------------------

TEST(Psw, GetReflectsFlagsAndCwp)
{
    sim::Cpu cpu;
    auto result = runAuto(cpu, R"(
_start: mov   1, r16
        cmp   r16, 1          ; Z=1, C=1 (no borrow)
        getpsw r17
        halt
)");
    ASSERT_TRUE(result.halted());
    const uint32_t psw = cpu.reg(17);
    EXPECT_TRUE(psw & 8);  // Z
    EXPECT_TRUE(psw & 1);  // C
    EXPECT_TRUE(psw & 16); // interrupts enabled
    EXPECT_EQ((psw >> 8) & 0x1f, cpu.cwp());
}

TEST(Psw, PutRestoresFlags)
{
    sim::Cpu cpu;
    auto result = runAuto(cpu, R"(
_start: putpsw r0, 10          ; V=1, Z=1
        halt
)");
    ASSERT_TRUE(result.halted());
    EXPECT_TRUE(cpu.flags().z);
    EXPECT_TRUE(cpu.flags().v);
    EXPECT_FALSE(cpu.flags().c);
}

TEST(Psw, CallintRetintToggleInterruptsAndWindows)
{
    // Explicit layout: callint records the last PC (the nop at 0x1000);
    // the handler stores its PSW (IE clear) and retint resumes at the
    // halt, re-enabling interrupts.
    sim::Cpu cpu;
    auto result = runExplicit(cpu, R"(
_start: nop                   ; 0x1000 = lastPc seen by callint
        callint r16           ; 0x1004: r16 := 0x1000, IE := 0
        getpsw  r17           ; 0x1008 (interrupt window)
        stl     r17, (r0)700  ; 0x100c
        retint  (r16)20       ; 0x1010 -> 0x1014
        nop                   ; 0x1014 slot (also the target)
        jmp     alw, (r0)0    ; 0x1018 halt
        nop
)");
    ASSERT_TRUE(result.halted()) << result.message;
    EXPECT_TRUE(cpu.interruptsEnabled());
    EXPECT_EQ(cpu.memory().peek32(700) & 16u, 0u); // IE was clear inside
    EXPECT_EQ(cpu.reg(16), 0u);                    // handler window popped
    EXPECT_EQ(cpu.stats().calls, 1u);
    EXPECT_EQ(cpu.stats().returns, 1u);
}

TEST(Misc, LdhiBuildsHighBits)
{
    sim::Cpu cpu;
    auto result = runAuto(cpu, R"(
_start: ldhi  r16, 0x7ffff
        ldhi  r17, 1
        halt
)");
    ASSERT_TRUE(result.halted());
    EXPECT_EQ(cpu.reg(16), 0xffffe000u);
    EXPECT_EQ(cpu.reg(17), 0x2000u);
}

// ---- faults and limits ----------------------------------------------------------------

TEST(Faults, MisalignedLoad)
{
    sim::Cpu cpu;
    auto result = runAuto(cpu, R"(
_start: mov   0x101, r16
        ldl   (r16)0, r17
        halt
)");
    EXPECT_EQ(result.reason, sim::StopReason::Fault);
    EXPECT_NE(result.message.find("misaligned"), std::string::npos);
}

TEST(Faults, ReturnWithoutCall)
{
    sim::Cpu cpu;
    auto result = runAuto(cpu, "_start: ret\n");
    EXPECT_EQ(result.reason, sim::StopReason::Fault);
    EXPECT_NE(result.message.find("return without"), std::string::npos);
}

TEST(Faults, InstructionLimitStopsRunaways)
{
    sim::CpuOptions opts;
    opts.maxInstructions = 100;
    sim::Cpu cpu(opts);
    auto result = runAuto(cpu, "_start: b _start\n");
    EXPECT_EQ(result.reason, sim::StopReason::InstLimit);
    EXPECT_EQ(result.instructions, 100u);
}

TEST(Init, StackPointerAndState)
{
    sim::CpuOptions opts;
    opts.stackTop = 0x40000;
    sim::Cpu cpu(opts);
    cpu.load(assembleOrDie("_start: halt\n"));
    EXPECT_EQ(cpu.reg(isa::SpReg), 0x40000u);
    EXPECT_EQ(cpu.cwp(), 0u);
    EXPECT_EQ(cpu.residentWindows(), 1u);
}

TEST(Init, RejectsSingleWindowConfig)
{
    sim::CpuOptions opts;
    opts.windows.numWindows = 1;
    EXPECT_THROW(sim::Cpu cpu(opts), FatalError);
}

// ---- window trap mechanics --------------------------------------------------------------

/** Straight recursion to a given depth; overflow counts follow a
 *  closed form: frames = depth + 2 (main + descend(n..0)),
 *  overflows = max(0, frames - (windows - 1)). */
struct DepthCase
{
    unsigned depth;
    unsigned windows;
};

class WindowTraps : public ::testing::TestWithParam<DepthCase>
{};

TEST_P(WindowTraps, OverflowCountMatchesClosedForm)
{
    const auto [depth, windows] = GetParam();
    sim::CpuOptions opts;
    opts.windows.numWindows = windows;
    sim::Cpu cpu(opts);
    auto result = runAuto(cpu, strprintf(R"(
_start: mov   %u, r10
        call  descend
        halt
descend:
        cmp   r26, 0
        beq   bottom
        sub   r26, 1, r10
        call  descend
bottom: ret
)",
                                         depth));
    ASSERT_TRUE(result.halted()) << result.message;
    const unsigned frames = depth + 2;
    const unsigned expect_ovf =
        frames > windows - 1 ? frames - (windows - 1) : 0;
    EXPECT_EQ(cpu.stats().windowOverflows, expect_ovf);
    EXPECT_EQ(cpu.stats().windowUnderflows, expect_ovf);
    EXPECT_EQ(cpu.stats().spillWords, 16u * expect_ovf);
    EXPECT_EQ(cpu.stats().refillWords, 16u * expect_ovf);
    EXPECT_EQ(cpu.stats().maxCallDepth, depth + 1u);
    EXPECT_EQ(cpu.residentWindows(), 1u); // unwound to main
}

INSTANTIATE_TEST_SUITE_P(
    DepthsAndWindows, WindowTraps,
    ::testing::Values(DepthCase{0, 8}, DepthCase{5, 8}, DepthCase{6, 8},
                      DepthCase{7, 8}, DepthCase{20, 8},
                      DepthCase{20, 2}, DepthCase{20, 4},
                      DepthCase{20, 16}, DepthCase{3, 3}));

TEST(WindowTrapsMisc, SpillStackWritesBelowSpillBase)
{
    sim::CpuOptions opts;
    opts.spillBase = 0x00200000;
    sim::Cpu cpu(opts);
    auto result = runAuto(cpu, R"(
_start: mov   10, r10
        call  descend
        halt
descend:
        cmp   r26, 0
        beq   bottom
        sub   r26, 1, r10
        call  descend
bottom: ret
)");
    ASSERT_TRUE(result.halted());
    ASSERT_GT(cpu.stats().windowOverflows, 2u);
    // Spilled frames land just below spillBase; the recursive frames
    // carry nonzero return addresses, so the region cannot be blank.
    // (The first frame is main's, whose registers are legitimately 0.)
    bool any_nonzero = false;
    const uint32_t span = 64 * static_cast<uint32_t>(
                                   cpu.stats().windowOverflows);
    for (uint32_t a = opts.spillBase - span; a < opts.spillBase; a += 4)
        any_nonzero |= cpu.memory().peek32(a) != 0;
    EXPECT_TRUE(any_nonzero);
}

// ---- randomized differential ALU test ----------------------------------------------------

/** Host-side reference of the ALU ops used by the differential test. */
uint32_t
hostAlu(isa::Opcode op, uint32_t a, uint32_t b)
{
    switch (op) {
      case isa::Opcode::Add: return a + b;
      case isa::Opcode::Sub: return a - b;
      case isa::Opcode::Subr: return b - a;
      case isa::Opcode::And: return a & b;
      case isa::Opcode::Or: return a | b;
      case isa::Opcode::Xor: return a ^ b;
      case isa::Opcode::Sll: return a << (b & 31);
      case isa::Opcode::Srl: return a >> (b & 31);
      case isa::Opcode::Sra:
        return static_cast<uint32_t>(static_cast<int32_t>(a) >>
                                     (b & 31));
      default: return 0;
    }
}

class AluDifferential : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(AluDifferential, MatchesHostReference)
{
    constexpr isa::Opcode ops[] = {
        isa::Opcode::Add, isa::Opcode::Sub, isa::Opcode::Subr,
        isa::Opcode::And, isa::Opcode::Or,  isa::Opcode::Xor,
        isa::Opcode::Sll, isa::Opcode::Srl, isa::Opcode::Sra,
    };
    Rng rng(GetParam());

    // Mirror of registers r16..r23.
    uint32_t model[8];
    std::string src = "_start:\n";
    for (unsigned i = 0; i < 8; ++i) {
        model[i] = static_cast<uint32_t>(rng.next());
        src += strprintf("        mov 0x%x, r%u\n", model[i], 16 + i);
    }
    struct Step
    {
        isa::Opcode op;
        unsigned a, b, d;
        bool imm;
        int32_t simm;
    };
    std::vector<Step> steps;
    for (int i = 0; i < 150; ++i) {
        Step s;
        s.op = ops[rng.below(std::size(ops))];
        s.a = static_cast<unsigned>(rng.below(8));
        s.b = static_cast<unsigned>(rng.below(8));
        s.d = static_cast<unsigned>(rng.below(8));
        s.imm = rng.chance(1, 3);
        s.simm = static_cast<int32_t>(rng.range(-4096, 4095));
        steps.push_back(s);
        const isa::OpInfo &info = isa::opInfo(s.op);
        if (s.imm) {
            src += strprintf("        %s r%u, %d, r%u\n",
                             std::string(info.mnemonic).c_str(),
                             16 + s.a, s.simm, 16 + s.d);
        } else {
            src += strprintf("        %s r%u, r%u, r%u\n",
                             std::string(info.mnemonic).c_str(),
                             16 + s.a, 16 + s.b, 16 + s.d);
        }
    }
    src += "        halt\n";

    sim::Cpu cpu;
    auto result = runAuto(cpu, src);
    ASSERT_TRUE(result.halted()) << result.message;

    for (const Step &s : steps) {
        const uint32_t b = s.imm ? static_cast<uint32_t>(s.simm)
                                 : model[s.b];
        model[s.d] = hostAlu(s.op, model[s.a], b);
    }
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(cpu.reg(16 + i), model[i]) << "r" << 16 + i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, AluDifferential,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u,
                                           66u));

} // namespace
