/**
 * @file
 * Assembler unit tests: lexing, parsing, directives, pseudo-instruction
 * expansion, symbol handling, range checking, constant synthesis
 * (hi13/lo13), and listings.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "asm/lexer.hh"
#include "isa/disasm.hh"
#include "isa/registers.hh"
#include "sim/cpu.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace {

using namespace risc1;
using namespace risc1::assembler;

// ---- lexer -----------------------------------------------------------------

TEST(Lexer, TokenKindsAndComments)
{
    auto toks = tokenizeLine("loop: add r1, -4, r2 ; comment");
    ASSERT_EQ(toks.size(), 8u);
    EXPECT_EQ(toks[0].kind, TokKind::Ident);
    EXPECT_EQ(toks[1].kind, TokKind::Colon);
    EXPECT_EQ(toks[2].text, "add");
    EXPECT_EQ(toks[4].kind, TokKind::Comma);
    EXPECT_EQ(toks[5].value, -4);

    EXPECT_TRUE(tokenizeLine("# full comment").empty());
    EXPECT_TRUE(tokenizeLine("// slashes too").empty());
    EXPECT_TRUE(tokenizeLine("   ").empty());
}

TEST(Lexer, NumbersAndStrings)
{
    auto toks = tokenizeLine(".word 0x10, 'a', \"hi\\n\"");
    ASSERT_EQ(toks.size(), 7u);
    EXPECT_EQ(toks[2].value, 16);
    EXPECT_EQ(toks[4].value, 97);
    EXPECT_EQ(toks[6].kind, TokKind::String);
    EXPECT_EQ(toks[6].text, "hi\n");
}

TEST(Lexer, ReportsErrors)
{
    auto toks = tokenizeLine("add r1, 0xZZ");
    ASSERT_FALSE(toks.empty());
    EXPECT_EQ(toks.back().kind, TokKind::Error);

    toks = tokenizeLine(".ascii \"unterminated");
    EXPECT_EQ(toks.back().kind, TokKind::Error);
}

// ---- assembly basics ----------------------------------------------------------

/** Helper: assemble and expect success. */
AsmResult
ok(const std::string &src, AsmOptions opts = {})
{
    AsmResult result = assemble(src, opts);
    EXPECT_TRUE(result.ok()) << result.errorText();
    return result;
}

/** Helper: assemble and expect failure mentioning `needle`. */
void
bad(const std::string &src, const std::string &needle)
{
    AsmResult result = assemble(src);
    ASSERT_FALSE(result.ok()) << "expected failure for: " << src;
    EXPECT_NE(result.errorText().find(needle), std::string::npos)
        << "got: " << result.errorText();
}

TEST(Assembler, MinimalProgram)
{
    AsmResult result = ok("_start: add r1, r2, r3\n");
    EXPECT_EQ(result.program.instructionCount, 1u);
    EXPECT_EQ(result.program.entry, 0x1000u);
    EXPECT_EQ(*result.program.wordAt(0x1000),
              isa::encode(isa::makeRR(isa::Opcode::Add, 1, 2, 3)));
}

TEST(Assembler, EntrySelection)
{
    EXPECT_EQ(ok("main: nop\n").program.entry, 0x1000u);
    EXPECT_EQ(ok("x: nop\n_start: nop\n").program.entry, 0x1004u);
    EXPECT_EQ(ok(".entry go\nx: nop\ngo: nop\n").program.entry,
              0x1004u);
    bad(".entry nowhere\nnop\n", "undefined entry symbol");
}

TEST(Assembler, Directives)
{
    AsmResult result = ok(R"(
        .org  0x2000
        .equ  K, 0x30
a:      .word 1, -1, K
b:      .half 0x1234, -2
c:      .byte 1, 2, 3
        .align 4
d:      .asciz "ok"
e:      .space 5
end:    nop
)");
    const Program &p = result.program;
    EXPECT_EQ(*p.symbol("a"), 0x2000u);
    EXPECT_EQ(*p.wordAt(0x2000), 1u);
    EXPECT_EQ(*p.wordAt(0x2004), 0xffffffffu);
    EXPECT_EQ(*p.wordAt(0x2008), 0x30u);
    EXPECT_EQ(*p.symbol("b"), 0x200cu);
    EXPECT_EQ(*p.byteAt(0x200c), 0x34u);
    EXPECT_EQ(*p.byteAt(0x200d), 0x12u);
    EXPECT_EQ(*p.symbol("c"), 0x2010u);
    EXPECT_EQ(*p.symbol("d"), 0x2014u); // aligned from 0x2013
    EXPECT_EQ(*p.byteAt(0x2014), 'o');
    EXPECT_EQ(*p.byteAt(0x2016), 0u); // NUL of .asciz
    EXPECT_EQ(*p.symbol("e"), 0x2017u);
    EXPECT_EQ(*p.symbol("end"), 0x201cu);
}

TEST(Assembler, SymbolArithmeticInOperands)
{
    AsmOptions opts;
    opts.autoDelaySlots = false; // keep the layout sequential
    AsmResult result = ok(R"(
        .equ BASE, 0x100
_start: ldl  (r1)BASE+8, r2
        ldl  (r1)BASE-4, r3
)",
                          opts);
    const uint32_t w0 = *result.program.wordAt(0x1000);
    EXPECT_EQ(isa::decode(w0).inst.simm13, 0x108);
    const uint32_t w1 = *result.program.wordAt(0x1004);
    EXPECT_EQ(isa::decode(w1).inst.simm13, 0xfc);
}

TEST(Assembler, DiagnosticsCarryLineNumbers)
{
    AsmResult result = assemble("nop\nbogus r1\nnop\n");
    ASSERT_FALSE(result.ok());
    ASSERT_EQ(result.errors.size(), 1u);
    EXPECT_EQ(result.errors[0].line, 2u);
}

TEST(Assembler, ErrorCases)
{
    bad("add r1, r2\n", "expects 3 operand");
    bad("add r1, r2, 5\n", "must be a register");
    bad("ldl r1, r2\n", "memory operand");
    bad("jmp r1, (r2)0\n", "condition code");
    bad("x: nop\nx: nop\n", "duplicate symbol");
    bad("b nowhere\n", "undefined symbol");
    bad("add r1, 5000, r2\n", "does not fit in 13");
    bad("add r1, -5000, r2\n", "does not fit in 13");
    bad(".byte 300\n", "does not fit in 1");
    bad(".align 3\n", "power of two");
    bad("mov hi13(x), r1\n", "not allowed here");
}

TEST(Assembler, BranchOutOfRangeIsDiagnosed)
{
    // A jmpr target beyond +-2^18 bytes.
    std::string src = "_start: b far\n.org 0x100000\nfar: nop\n";
    bad(src, "out of range");
}

// ---- pseudo instructions ----------------------------------------------------------

/** Decode instruction `index` of an assembled single-block program. */
isa::Instruction
instAt(const Program &p, unsigned index)
{
    const uint32_t addr = p.entry + 4 * index;
    auto word = p.wordAt(addr);
    EXPECT_TRUE(word.has_value());
    auto dec = isa::decode(*word);
    EXPECT_TRUE(dec.ok) << dec.error;
    return dec.inst;
}

TEST(Pseudos, SimpleExpansions)
{
    AsmOptions opts;
    opts.autoDelaySlots = false; // keep indices stable
    const Program p = ok(R"(
_start: nop
        mov  r3, r4
        mov  5, r4
        cmp  r1, r2
        not  r1, r2
        neg  r1, r2
        inc  r5
        dec  r5, 3
        clr  r6
)",
                         opts)
                          .program;
    EXPECT_TRUE(isa::isNop(instAt(p, 0)));
    EXPECT_EQ(isa::disassemble(instAt(p, 1)), "or       r3, 0, r4");
    EXPECT_EQ(isa::disassemble(instAt(p, 2)), "add      r0, 5, r4");
    EXPECT_EQ(isa::disassemble(instAt(p, 3)), "subs     r1, r2, r0");
    EXPECT_EQ(isa::disassemble(instAt(p, 4)), "xor      r1, -1, r2");
    EXPECT_EQ(isa::disassemble(instAt(p, 5)), "subr     r1, 0, r2");
    EXPECT_EQ(isa::disassemble(instAt(p, 6)), "add      r5, 1, r5");
    EXPECT_EQ(isa::disassemble(instAt(p, 7)), "sub      r5, 3, r5");
    EXPECT_EQ(isa::disassemble(instAt(p, 8)), "add      r0, 0, r6");
}

TEST(Pseudos, BranchFamily)
{
    AsmOptions opts;
    opts.autoDelaySlots = false;
    const Program p = ok(R"(
_start: b    _start
        beq  _start
        bhi  _start
        call _start
        ret
)",
                         opts)
                          .program;
    EXPECT_EQ(instAt(p, 0).op, isa::Opcode::Jmpr);
    EXPECT_EQ(instAt(p, 0).cond(), isa::Cond::Alw);
    EXPECT_EQ(instAt(p, 1).cond(), isa::Cond::Eq);
    EXPECT_EQ(instAt(p, 2).cond(), isa::Cond::Hi);
    EXPECT_EQ(instAt(p, 3).op, isa::Opcode::Callr);
    EXPECT_EQ(instAt(p, 3).rd, isa::RaReg);
    EXPECT_EQ(instAt(p, 4).op, isa::Opcode::Ret);
    EXPECT_EQ(instAt(p, 4).rs1, isa::RaReg);
    EXPECT_EQ(instAt(p, 4).simm13, 8);
}

TEST(Pseudos, PushPopExpandToSpOps)
{
    AsmOptions opts;
    opts.autoDelaySlots = false;
    const Program p = ok("_start: push r7\n pop r8\n", opts).program;
    EXPECT_EQ(isa::disassemble(instAt(p, 0)), "sub      r1, 4, r1");
    EXPECT_EQ(isa::disassemble(instAt(p, 1)), "stl      r7, (r1)0");
    EXPECT_EQ(isa::disassemble(instAt(p, 2)), "ldl      (r1)0, r8");
    EXPECT_EQ(isa::disassemble(instAt(p, 3)), "add      r1, 4, r1");
}

TEST(Pseudos, SccSuffixOnAluMnemonics)
{
    AsmOptions opts;
    opts.autoDelaySlots = false;
    const Program p =
        ok("_start: adds r1, r2, r3\n subs r1, 1, r1\n slls r1, 2, r1\n",
           opts)
            .program;
    EXPECT_TRUE(instAt(p, 0).scc);
    EXPECT_TRUE(instAt(p, 1).scc);
    EXPECT_TRUE(instAt(p, 2).scc);
    // But "lds"/"rets" stay unknown.
    bad("rets\n", "unknown mnemonic");
}

/** Property: mov synthesizes any 32-bit constant exactly. */
class MovConstant : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(MovConstant, Hi13Lo13Identity)
{
    Rng rng(GetParam());
    for (int i = 0; i < 64; ++i) {
        uint32_t value;
        switch (i % 4) {
          case 0: value = static_cast<uint32_t>(rng.next()); break;
          case 1: value = static_cast<uint32_t>(rng.below(8192)); break;
          case 2:
            value = 0xffffffffu - static_cast<uint32_t>(rng.below(8192));
            break;
          default: value = 1u << rng.below(32); break;
        }
        const std::string src = strprintf(
            "_start: mov 0x%x, r16\n stl r16, (r0)256\n halt\n", value);
        sim::Cpu cpu;
        cpu.load(assembleOrDie(src));
        auto result = cpu.run();
        ASSERT_TRUE(result.halted());
        EXPECT_EQ(cpu.memory().peek32(256), value)
            << strprintf("value 0x%x", value);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MovConstant,
                         ::testing::Values(1u, 2u, 3u, 4u));

// ---- delay-slot management ------------------------------------------------------------

TEST(DelaySlots, AutoInsertionAddsNops)
{
    AsmOptions no_fill;
    no_fill.fillDelaySlots = false;
    const AsmResult result = ok("_start: b next\nnext: halt\n", no_fill);
    // b + slot + halt(jmp) + slot = 4 instructions.
    EXPECT_EQ(result.program.instructionCount, 4u);
    EXPECT_EQ(result.slotStats.totalSlots, 2u);
    EXPECT_EQ(result.slotStats.filledSlots, 0u);
}

TEST(DelaySlots, ExplicitModeTrustsProgrammer)
{
    AsmOptions expl;
    expl.autoDelaySlots = false;
    const AsmResult result =
        ok("_start: b next\nnop\nnext: halt\nnop\n", expl);
    EXPECT_EQ(result.program.instructionCount, 4u);
    EXPECT_EQ(result.slotStats.totalSlots, 0u);
}

TEST(Assembler, ListingShowsAddressesAndWords)
{
    AsmOptions opts;
    opts.makeListing = true;
    const AsmResult result = ok("_start: add r1, r2, r3\n", opts);
    EXPECT_NE(result.listing.find("00001000"), std::string::npos);
    EXPECT_NE(result.listing.find("add"), std::string::npos);
}

TEST(Assembler, InstructionsAutoAlignAfterByteData)
{
    // Code following odd-length data must land on a word boundary.
    AsmResult result = ok(R"(
_start: b    code
s:      .asciz "xyz"
code:   nop
        halt
)");
    EXPECT_EQ(*result.program.symbol("code") % 4, 0u);
    sim::Cpu cpu;
    cpu.load(result.program);
    EXPECT_TRUE(cpu.run().halted());
}

TEST(Assembler, MoreOperandFormErrors)
{
    bad("jmpr eq\n", "expects 2 operand");
    bad("callint\n", "expects 1 operand");
    bad("callint (r1)0\n", "must be a register");
    bad("ldhi r1\n", "expects 2 operand");
    bad("ldhi 5, r1\n", "must be a register");
    bad("putpsw 5, r1\n", "must be a register");
    bad("push\n", "expects 1 operand");
    bad("pop 5\n", "must be a register");
    bad(".equ 5, 5\n", "must be a name");
    bad(".entry\n", "expects 1 operand");
    bad(".space -1\n", "non-negative");
    bad("mov r1\n", "expects 2 operand");
    bad("inc\n", "1 or 2 operands");
    bad("ldhi r1, 0x80000\n", "19-bit");
}

TEST(Assembler, RetVariantsEncodeCorrectly)
{
    AsmOptions opts;
    opts.autoDelaySlots = false;
    const Program p = ok("_start: ret (r17)4\n retint (r16)0\n", opts)
                          .program;
    EXPECT_EQ(instAt(p, 0).rs1, 17u);
    EXPECT_EQ(instAt(p, 0).simm13, 4);
    EXPECT_EQ(instAt(p, 1).op, isa::Opcode::Retint);
    EXPECT_EQ(instAt(p, 1).rs1, 16u);
}

TEST(Assembler, LocationCounterInDataAndBranches)
{
    AsmOptions opts;
    opts.autoDelaySlots = false;
    const Program p = ok(R"(
        .org 0x2000
a:      .word ., .+8
_start: jmpr alw, .+8
        nop
        nop
)",
                         opts)
                          .program;
    EXPECT_EQ(*p.wordAt(0x2000), 0x2000u);
    EXPECT_EQ(*p.wordAt(0x2004), 0x2004u + 8u);
    const auto inst = instAt(p, 0);
    EXPECT_EQ(inst.imm19, 8);
}

} // namespace
