/**
 * @file
 * The superblock template JIT (src/jit): native code emission from
 * baked SbStep arrays must be a pure optimisation. Every scenario
 * runs the same program under the JIT engine and the plain
 * interpreter and requires byte-identical results and statistics —
 * including the hard cases the interpreted superblock engine pins in
 * test_superblock.cc: a self-modifying store into the MIDDLE of a
 * live block (native code must bail and demote), a guest fault raised
 * by an interior load, a mid-run snapshot/restore (compiled entries
 * die with their records), and seeded random programs under the
 * lockstep sentinel. On hosts without templates (jit::hostSupported()
 * false) the option is inert and the engine IS the interpreted
 * superblock engine, so the differentials still hold; only the
 * engagement assertions are skipped.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "jit/arena.hh"
#include "sim/cpu.hh"
#include "sim/lockstep.hh"
#include "sim/snapshot.hh"
#include "support/logging.hh"
#include "workloads/workload.hh"

namespace {

using namespace risc1;

void
expectStatsEq(const sim::SimStats &a, const sim::SimStats &b,
              const std::string &what)
{
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.perOpcode, b.perOpcode) << what;
    EXPECT_EQ(a.perClass, b.perClass) << what;
    EXPECT_EQ(a.branches, b.branches) << what;
    EXPECT_EQ(a.branchesTaken, b.branchesTaken) << what;
    EXPECT_EQ(a.nopsExecuted, b.nopsExecuted) << what;
    EXPECT_EQ(a.calls, b.calls) << what;
    EXPECT_EQ(a.returns, b.returns) << what;
    EXPECT_EQ(a.windowOverflows, b.windowOverflows) << what;
    EXPECT_EQ(a.windowUnderflows, b.windowUnderflows) << what;
    EXPECT_EQ(a.spillWords, b.spillWords) << what;
    EXPECT_EQ(a.refillWords, b.refillWords) << what;
    EXPECT_EQ(a.memory.instFetches, b.memory.instFetches) << what;
    EXPECT_EQ(a.memory.dataReads, b.memory.dataReads) << what;
    EXPECT_EQ(a.memory.dataWrites, b.memory.dataWrites) << what;
}

/** The full ladder: superblock formation plus native emission. */
sim::CpuOptions
jitOptions()
{
    sim::CpuOptions opts;
    opts.fuse = false;
    opts.superblock = true;
    opts.jit = true;
    return opts;
}

sim::CpuOptions
plainOptions()
{
    sim::CpuOptions opts;
    opts.threaded = false;
    return opts;
}

/** The reference: the plain (non-predecoded) interpreter. */
sim::CpuOptions
interpOptions()
{
    sim::CpuOptions opts;
    opts.predecode = false;
    opts.threaded = false;
    opts.fuse = false;
    opts.superblock = false;
    return opts;
}

/** Assemble with delay-slot filling off so the written instruction
 *  order is exactly what runs. */
assembler::Program
assembleRaw(const std::string &src)
{
    assembler::AsmOptions no_fill;
    no_fill.fillDelaySlots = false;
    return assembler::assembleOrDie(src, no_fill);
}

// ---- Suite differential: JIT engine vs the plain interpreter -------------

TEST(Jit, RiscSuiteDifferential)
{
    uint64_t block_insts = 0;
    size_t code_bytes = 0;
    for (const workloads::Workload &wl : workloads::allWorkloads()) {
        const assembler::Program prog =
            workloads::buildRisc(wl, wl.defaultScale);

        sim::Cpu jit(jitOptions());
        sim::Cpu plain(plainOptions());
        jit.load(prog);
        plain.load(prog);
        const sim::ExecResult rj = jit.run();
        const sim::ExecResult rp = plain.run();

        EXPECT_EQ(rj.reason, rp.reason) << wl.name;
        EXPECT_EQ(jit.memory().peek32(workloads::ResultAddr),
                  plain.memory().peek32(workloads::ResultAddr))
            << wl.name;
        expectStatsEq(jit.stats(), plain.stats(), wl.name);
        block_insts += jit.stats().sbInstructions;
        code_bytes += jit.jitCodeBytes();
    }
    EXPECT_GT(block_insts, 0u);
    // Native code must actually be emitted somewhere in the suite.
    if (jit::hostSupported())
        EXPECT_GT(code_bytes, 0u);
    else
        EXPECT_EQ(code_bytes, 0u);
}

// ---- Self-modifying store into the middle of a live block ----------------

TEST(Jit, StoreIntoBlockMiddleDemotesNativeCode)
{
    // Same scenario test_superblock.cc pins for the interpreted
    // engine: after ten hot iterations the store at `patch_now`
    // overwrites `mid` — the MIDDLE word of the running block — with
    // `add r17, 100, r17`. The native store helper demotes the block
    // mid-pass; the emitted code must bail to the slow commit (the
    // unexecuted tail is stale) and the patched word must take effect
    // on the very next iteration.
    const assembler::Program enc =
        assembler::assembleOrDie("_start: add r17, 100, r17\n halt\n");
    const uint32_t patched = *enc.wordAt(enc.entry);

    const std::string src = strprintf(R"(
        .equ RESULT, %u
        .org  256
_start: ldl   (r0)newword, r16
        clr   r17
        clr   r18
loop:   add   r17, 1, r17
        add   r17, 1, r17
mid:    add   r17, 1, r17
        add   r17, 1, r17
        add   r18, 1, r18
        cmp   r18, 20
        bge   done
        cmp   r18, 10
        blt   loop
        stl   r16, (r0)mid
        b     loop
done:   stl   r17, (r0)RESULT
        halt
newword: .word %u
)",
                                      workloads::ResultAddr, patched);
    const assembler::Program prog = assembleRaw(src);

    sim::Cpu jit(jitOptions());
    sim::Cpu plain(plainOptions());
    jit.load(prog);
    plain.load(prog);
    const sim::ExecResult rj = jit.run();
    const sim::ExecResult rp = plain.run();

    ASSERT_TRUE(rj.halted());
    ASSERT_TRUE(rp.halted());
    // 10 iterations of +4, then 10 of +103.
    EXPECT_EQ(plain.memory().peek32(workloads::ResultAddr), 1070u);
    EXPECT_EQ(jit.memory().peek32(workloads::ResultAddr), 1070u);
    expectStatsEq(jit.stats(), plain.stats(), "mid-block store");
    EXPECT_GE(jit.stats().sbBlocksFormed, 1u);
    EXPECT_GE(jit.stats().sbBlocksDemoted, 1u);
}

// ---- Guest fault raised by an interior load ------------------------------

TEST(Jit, InteriorFaultMatchesSlowPath)
{
    // The faulting load is an interior step of a compiled block: the
    // native code must return at the exact step, and the shared
    // unwind must reconstruct the slow path's state to the byte.
    const std::string src = R"(
        .org  256
_start: add   r0, 256, r16
        clr   r17
body:   add   r17, 1, r17
        add   r16, r16, r16
        ldl   (r16)0, r19
        add   r17, 2, r17
        cmp   r17, 4000
        blt   body
        halt
)";
    const assembler::Program prog = assembleRaw(src);

    sim::CpuOptions jit_opts = jitOptions();
    sim::CpuOptions plain_opts = plainOptions();
    jit_opts.memLimit = 0x01000000;
    plain_opts.memLimit = 0x01000000;

    sim::Cpu jit(jit_opts);
    sim::Cpu plain(plain_opts);
    jit.load(prog);
    plain.load(prog);
    const sim::ExecResult rj = jit.run();
    const sim::ExecResult rp = plain.run();

    ASSERT_EQ(rp.reason, sim::StopReason::Fault);
    ASSERT_EQ(rj.reason, sim::StopReason::Fault);
    EXPECT_EQ(rj.faultCause, rp.faultCause);
    EXPECT_EQ(rj.faultAddr, rp.faultAddr);
    EXPECT_EQ(rj.faultPc, rp.faultPc);
    EXPECT_EQ(rj.instructions, rp.instructions);
    EXPECT_EQ(rj.cycles, rp.cycles);
    EXPECT_EQ(jit.pc(), plain.pc());
    expectStatsEq(jit.stats(), plain.stats(), "interior fault");
    EXPECT_GT(jit.stats().sbDispatches, 0u);
}

// ---- Mid-run snapshot/restore -------------------------------------------

TEST(Jit, SnapshotRestoreMidRunMatchesPlain)
{
    // Snapshot while compiled blocks are hot, keep running, then
    // restore and finish: restore() must retire every compiled entry
    // (records are re-formed and re-compiled lazily), and the final
    // state must match the uninterrupted plain run exactly. Pausing
    // at odd instruction counts also pins runUntil's exactness over
    // native dispatch: batch boundaries land mid-loop and the engine
    // must stop on the precise instruction.
    const workloads::Workload *pick = nullptr;
    for (const workloads::Workload &wl : workloads::allWorkloads())
        if (wl.recursive)
            pick = &wl;
    ASSERT_NE(pick, nullptr);
    const assembler::Program prog =
        workloads::buildRisc(*pick, pick->defaultScale);

    sim::Cpu plain(plainOptions());
    plain.load(prog);
    const sim::ExecResult rp = plain.run();
    ASSERT_TRUE(rp.halted());

    sim::Cpu jit(jitOptions());
    jit.load(prog);
    const uint64_t early = rp.instructions / 5 + 3;
    const uint64_t late = (3 * rp.instructions) / 4 + 1;
    ASSERT_EQ(jit.runUntil(early).reason, sim::StopReason::Paused);
    EXPECT_EQ(jit.stats().instructions, early);
    const sim::Snapshot snap = jit.snapshot();
    ASSERT_EQ(jit.runUntil(late).reason, sim::StopReason::Paused);
    EXPECT_EQ(jit.stats().instructions, late);
    ASSERT_GT(jit.stats().sbInstructions, 0u);

    jit.restore(snap);
    EXPECT_EQ(jit.jitCodeBytes(), 0u); // arena died with the records
    const sim::ExecResult rj = jit.run();
    ASSERT_TRUE(rj.halted());
    EXPECT_EQ(jit.memory().peek32(workloads::ResultAddr),
              plain.memory().peek32(workloads::ResultAddr));
    expectStatsEq(jit.stats(), plain.stats(), "restored jit");
}

// ---- Lockstep sentinel: workloads and fuzzed programs --------------------

TEST(Jit, WorkloadsRunDivergenceFree)
{
    // An odd stride lands every pause mid-block, forcing the native
    // self-loop budget to cut iterations at arbitrary points.
    unsigned tested = 0;
    for (const workloads::Workload &wl : workloads::allWorkloads()) {
        if (wl.name != "fibonacci" && wl.name != "queens")
            continue;
        const assembler::Program prog =
            workloads::buildRisc(wl, wl.defaultScale);
        sim::LockstepOptions opts;
        opts.stride = 777;
        const sim::LockstepResult res =
            sim::runLockstep(prog, interpOptions(), jitOptions(), opts);
        EXPECT_FALSE(res.diverged)
            << wl.name << " vs jit\n" << res.report.str();
        EXPECT_EQ(res.reason, sim::StopReason::Halted) << wl.name;
        ++tested;
    }
    EXPECT_EQ(tested, 2u);
}

TEST(Jit, FuzzedProgramsRunDivergenceFree)
{
    // Fixed seeds, bounded runs: random programs exercise step mixes
    // (carry chains, shifts, PSW reads, stores into text) no curated
    // workload reaches.
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        const assembler::Program prog = sim::randomProgram(seed);
        sim::LockstepOptions opts;
        opts.stride = 257;
        opts.maxInstructions = 60'000;
        const sim::LockstepResult res =
            sim::runLockstep(prog, interpOptions(), jitOptions(), opts);
        EXPECT_FALSE(res.diverged)
            << "seed " << seed << " vs jit\n" << res.report.str();
        EXPECT_TRUE(res.reason == sim::StopReason::Halted ||
                    res.reason == sim::StopReason::Paused)
            << "seed " << seed << ": reason "
            << static_cast<unsigned>(res.reason);
    }
}

// ---- Arena plumbing ------------------------------------------------------

TEST(Jit, ArenaInstallsAndRetires)
{
    jit::CodeArena arena;
    if (!jit::hostSupported())
        GTEST_SKIP() << "no templates for " << jit::hostArchName();
    const std::vector<uint8_t> ret = {0xc3}; // bare `ret`
    const void *p = arena.install(ret.data(), ret.size());
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 16, 0u);
    EXPECT_GT(arena.usedBytes(), 0u);
    // The installed page really is executable.
    reinterpret_cast<void (*)()>(reinterpret_cast<uintptr_t>(p))();
    arena.retire(1);
    EXPECT_EQ(arena.retiredBytes(), 1u);
    const size_t used = arena.usedBytes();
    arena.reset();
    EXPECT_EQ(arena.usedBytes(), 0u);
    EXPECT_EQ(arena.retiredBytes(), 0u);
    EXPECT_LE(used, arena.capacity());
}

} // namespace
