/**
 * @file
 * The shared serialization layer (sim/serial) under failure: every
 * ByteReader overrun must throw ByteStreamTruncated with the exact
 * byte offset and byte count of the failed read, checkCount must fail
 * fast on corrupt count fields, and — driving the whole stack — a
 * valid shard-cache record truncated at *any* point, or fuzzed with
 * random truncation/bit flips, must come back as a typed
 * ShardCacheError, never a wrong tally and never a crash. Happy-path
 * round-trips live alongside as the control group.
 */

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiments.hh"
#include "core/fleet.hh"
#include "sim/serial.hh"

namespace {

using namespace risc1;
using core::FaultCampaignRow;
using core::ShardCacheError;
using core::ShardParams;
using sim::ByteReader;
using sim::ByteStreamTruncated;
using sim::ByteWriter;

/** Deterministic xorshift64 — the fuzz loop must be reproducible. */
class Rng
{
  public:
    explicit Rng(uint64_t seed) : state_(seed) {}

    uint64_t
    next()
    {
        state_ ^= state_ << 13;
        state_ ^= state_ >> 7;
        state_ ^= state_ << 17;
        return state_;
    }

  private:
    uint64_t state_;
};

TEST(Serial, WriterReaderRoundTrip)
{
    ByteWriter w;
    w.u8(0xab);
    w.u32(0x01020304);
    w.u64(0x1122334455667788ull);
    const uint8_t blob[3] = {1, 2, 3};
    w.bytes(blob, sizeof(blob));
    EXPECT_EQ(w.size(), 1u + 4 + 8 + 3);

    const std::vector<uint8_t> buf = w.take();
    ByteReader r(buf);
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.offset(), 1u);
    EXPECT_EQ(r.u32(), 0x01020304u);
    EXPECT_EQ(r.offset(), 5u);
    EXPECT_EQ(r.u64(), 0x1122334455667788ull);
    uint8_t out[3] = {};
    r.bytes(out, sizeof(out));
    EXPECT_EQ(out[0], 1);
    EXPECT_EQ(out[2], 3);
    EXPECT_EQ(r.remaining(), 0u);
}

TEST(Serial, LittleEndianOnTheWire)
{
    ByteWriter w;
    w.u32(0x0a0b0c0d);
    const std::vector<uint8_t> &buf = w.buffer();
    ASSERT_EQ(buf.size(), 4u);
    EXPECT_EQ(buf[0], 0x0d); // least significant byte first
    EXPECT_EQ(buf[3], 0x0a);
}

/** Each overrun reports the stream position and size of the read that
 *  failed — the locator the typed cache/snapshot errors are built on. */
TEST(Serial, TruncatedReadReportsExactOffsetAndNeed)
{
    const std::vector<uint8_t> empty;
    ByteReader r0(empty);
    try {
        (void)r0.u8();
        FAIL() << "u8 on an empty stream succeeded";
    } catch (const ByteStreamTruncated &t) {
        EXPECT_EQ(t.offset, 0u);
        EXPECT_EQ(t.need, 1u);
        EXPECT_FALSE(t.countCheck);
    }

    // 6 bytes: a u32 fits, the u64 after it fails at offset 4 — the
    // offset is where the failed read *started*, not the stream end.
    const std::vector<uint8_t> six(6, 0xee);
    ByteReader r1(six);
    EXPECT_EQ(r1.u32(), 0xeeeeeeeeu);
    try {
        (void)r1.u64();
        FAIL() << "u64 past the end succeeded";
    } catch (const ByteStreamTruncated &t) {
        EXPECT_EQ(t.offset, 4u);
        EXPECT_EQ(t.need, 8u);
        EXPECT_FALSE(t.countCheck);
    }
    // The failed read consumed nothing: the reader is still usable.
    EXPECT_EQ(r1.offset(), 4u);
    EXPECT_EQ(r1.remaining(), 2u);

    ByteReader r2(six);
    uint8_t out[7];
    try {
        r2.bytes(out, sizeof(out));
        FAIL() << "bytes() past the end succeeded";
    } catch (const ByteStreamTruncated &t) {
        EXPECT_EQ(t.offset, 0u);
        EXPECT_EQ(t.need, 7u);
    }
}

TEST(Serial, CheckCountFailsFastOnCorruptCount)
{
    const std::vector<uint8_t> buf(16, 0);
    ByteReader r(buf);
    (void)r.u32(); // a pretend header before the count
    try {
        r.checkCount(uint64_t{1} << 60, 16);
        FAIL() << "absurd count accepted";
    } catch (const ByteStreamTruncated &t) {
        EXPECT_TRUE(t.countCheck);
        EXPECT_EQ(t.offset, 4u);
    }
    // Exactly-fitting counts pass, and so does zero.
    ByteReader ok(buf);
    ok.checkCount(2, 8);
    ok.checkCount(0, 1u << 20);
}

TEST(Serial, Fnv1aKnownVectors)
{
    EXPECT_EQ(sim::fnv1a(nullptr, 0), sim::FnvOffset);
    const uint8_t a[] = {'a'};
    EXPECT_EQ(sim::fnv1a(a, 1), 0xaf63dc4c8601ec8cull);
    const uint8_t foobar[] = {'f', 'o', 'o', 'b', 'a', 'r'};
    EXPECT_EQ(sim::fnv1a(foobar, 6), 0x85944171f73967e8ull);

    // fnvU64 is defined as folding the value's little-endian bytes.
    uint64_t h1 = sim::FnvOffset;
    sim::fnvU64(h1, 0x0123456789abcdefull);
    ByteWriter w;
    w.u64(0x0123456789abcdefull);
    uint64_t h2 = sim::FnvOffset;
    sim::fnvBytes(h2, w.buffer().data(), 8);
    EXPECT_EQ(h1, h2);
}

// ---- shard-record failure injection ------------------------------------
//
// A synthetic record (no campaign execution, so the sweep stays fast):
// the same serializer and validator the fleet uses, over hand-built
// rows with every field class populated.

ShardParams
syntheticParams()
{
    ShardParams p;
    p.configHash = 0x1111222233334444ull;
    p.imageHash = 0x5555666677778888ull;
    p.injections = 3;
    p.seed = 1981;
    p.first = 4;
    p.last = 12;
    p.recover = true;
    p.checkpointInterval = 5000;
    return p;
}

std::vector<FaultCampaignRow>
syntheticRows()
{
    std::vector<FaultCampaignRow> rows(3);
    const char *names[] = {"alpha", "a-much-longer-workload-name", "z"};
    for (size_t i = 0; i < rows.size(); ++i) {
        FaultCampaignRow &row = rows[i];
        row.name = names[i];
        row.injections = 3;
        row.baselineInsts = 1000 + 17 * i;
        row.checkpoints = 5 + i;
        row.replayedInsts = 123 * i;
        for (unsigned o = 0; o < core::NumFaultOutcomes; ++o) {
            row.byOutcome[o] = static_cast<unsigned>(i + o);
            row.recovered[o] = static_cast<unsigned>(o % 2);
            for (unsigned t = 0; t < core::NumFaultTargets; ++t) {
                row.byTarget[t][o] = static_cast<unsigned>(t + o + i);
                row.recoveredByTarget[t][o] =
                    static_cast<unsigned>((t + o) % 2);
            }
        }
    }
    return rows;
}

/** deserializeShardRecord must throw ShardCacheError; returns its
 *  kind. Any other outcome fails the test. */
ShardCacheError::Kind
mustReject(const std::vector<uint8_t> &bytes, const ShardParams &params)
{
    try {
        (void)core::deserializeShardRecord(bytes, params);
    } catch (const ShardCacheError &err) {
        EXPECT_FALSE(std::string(err.what()).empty());
        return err.kind();
    }
    ADD_FAILURE() << "malformed record accepted (" << bytes.size()
                  << " bytes)";
    return ShardCacheError::Kind::Io;
}

TEST(Serial, ShardRecordEveryStrictPrefixIsTruncated)
{
    const ShardParams params = syntheticParams();
    const std::vector<uint8_t> record =
        core::serializeShardRecord(params, syntheticRows());
    ASSERT_GT(record.size(), 32u);

    // The control: the untruncated record round-trips.
    EXPECT_EQ(core::serializeShardRecord(
                  params, core::deserializeShardRecord(record, params)),
              record);

    // Every strict prefix — not a sample — must be a *Truncated*
    // error specifically: the cut is detected by a bounds-checked
    // read, before any checksum comparison could mislabel it.
    for (size_t cut = 0; cut < record.size(); ++cut) {
        const std::vector<uint8_t> prefix(record.begin(),
                                          record.begin() + cut);
        EXPECT_EQ(mustReject(prefix, params),
                  ShardCacheError::Kind::Truncated)
            << "prefix of " << cut << " of " << record.size()
            << " bytes";
    }
}

TEST(Serial, ShardRecordTruncationMessagesCarryByteOffsets)
{
    const ShardParams params = syntheticParams();
    const std::vector<uint8_t> record =
        core::serializeShardRecord(params, syntheticRows());

    // Cut inside the trailing checksum: the failed read starts where
    // the checksum field does, and the message must say so.
    const size_t body = record.size() - 8;
    std::vector<uint8_t> cut(record.begin(),
                             record.begin() + body + 3);
    try {
        (void)core::deserializeShardRecord(cut, params);
        FAIL() << "record cut inside the checksum accepted";
    } catch (const ShardCacheError &err) {
        EXPECT_EQ(err.kind(), ShardCacheError::Kind::Truncated);
        const std::string what = err.what();
        EXPECT_NE(what.find("byte " + std::to_string(body)),
                  std::string::npos)
            << what;
    }
}

TEST(Serial, ShardRecordFuzzRandomTruncationPoints)
{
    const ShardParams params = syntheticParams();
    const std::vector<uint8_t> record =
        core::serializeShardRecord(params, syntheticRows());
    Rng rng(0x1981);
    for (int i = 0; i < 300; ++i) {
        const size_t cut = rng.next() % record.size();
        std::vector<uint8_t> prefix(record.begin(),
                                    record.begin() + cut);
        EXPECT_EQ(mustReject(prefix, params),
                  ShardCacheError::Kind::Truncated)
            << "iteration " << i << ", cut " << cut;
    }
}

TEST(Serial, ShardRecordFuzzRandomBitFlips)
{
    const ShardParams params = syntheticParams();
    const std::vector<uint8_t> record =
        core::serializeShardRecord(params, syntheticRows());
    Rng rng(0xbeef);
    for (int i = 0; i < 300; ++i) {
        std::vector<uint8_t> flipped = record;
        const size_t byte = rng.next() % flipped.size();
        flipped[byte] ^= static_cast<uint8_t>(1u << (rng.next() % 8));
        // Any single-bit flip is *some* typed rejection (which kind
        // depends on the field hit — magic, version, key, checksum),
        // never an accepted record: the trailing checksum covers
        // every byte, including itself by construction.
        (void)mustReject(flipped, params);
    }
}

} // namespace
