/**
 * @file
 * Unit tests of the vax80 baseline machine: operand modes, ALU ops,
 * branches, and the CALLS/RET procedure linkage.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "vax/builder.hh"
#include "vax/cpu.hh"

namespace {

using namespace risc1;
using namespace risc1::vax;

sim::ExecResult
runProgram(VaxCpu &cpu, VaxAsm &a)
{
    VaxProgram prog = a.finish();
    cpu.load(prog);
    return cpu.run();
}

TEST(Vax, MovlImmediateAndAdd)
{
    VaxAsm a;
    a.label("main");
    a.inst(VaxOp::Movl, {vimm(100), vreg(0)});
    a.inst(VaxOp::Addl3, {vreg(0), vimm(23), vreg(1)});
    a.halt();

    VaxCpu cpu;
    auto result = runProgram(cpu, a);
    ASSERT_TRUE(result.halted()) << result.message;
    EXPECT_EQ(cpu.reg(0), 100u);
    EXPECT_EQ(cpu.reg(1), 123u);
}

TEST(Vax, ShortLiteralEncodesOneByte)
{
    VaxAsm a;
    a.label("main");
    a.inst(VaxOp::Movl, {vlit(63), vreg(2)}); // 3 bytes total
    a.halt();
    VaxProgram prog = a.finish();
    EXPECT_EQ(prog.codeBytes, 4u); // movl(3) + halt(1)

    VaxCpu cpu;
    cpu.load(prog);
    auto result = cpu.run();
    ASSERT_TRUE(result.halted());
    EXPECT_EQ(cpu.reg(2), 63u);
}

TEST(Vax, MemoryOperandsAndDisplacement)
{
    VaxAsm a;
    a.label("main");
    a.inst(VaxOp::Movl, {vsym("data"), vreg(5)});
    a.inst(VaxOp::Movl, {vimm(777), vdisp(5, 4)});
    a.inst(VaxOp::Movl, {vdisp(5, 4), vreg(6)});
    a.halt();
    a.align(4);
    a.label("data");
    a.word(0);
    a.word(0);

    VaxCpu cpu;
    auto result = runProgram(cpu, a);
    ASSERT_TRUE(result.halted()) << result.message;
    EXPECT_EQ(cpu.reg(6), 777u);
}

TEST(Vax, IndexedAddressing)
{
    VaxAsm a;
    a.label("main");
    a.inst(VaxOp::Movl, {vsym("arr"), vreg(1)});
    a.inst(VaxOp::Movl, {vlit(2), vreg(2)});
    // arr[r2] = 55 (long elements).
    a.inst(VaxOp::Movl, {vlit(55), vidx(2, vdef(1))});
    a.inst(VaxOp::Movl, {vidx(2, vdef(1)), vreg(3)});
    a.halt();
    a.align(4);
    a.label("arr");
    for (int i = 0; i < 4; ++i)
        a.word(0);

    VaxCpu cpu;
    auto result = runProgram(cpu, a);
    ASSERT_TRUE(result.halted()) << result.message;
    EXPECT_EQ(cpu.reg(3), 55u);
    VaxProgram unused = VaxProgram{};
    (void)unused;
    // The write landed at arr + 2*4.
    EXPECT_EQ(cpu.memory().peek32(cpu.reg(1) + 8), 55u);
}

TEST(Vax, BranchesFollowComparisons)
{
    VaxAsm a;
    a.label("main");
    a.inst(VaxOp::Movl, {vlit(5), vreg(0)});
    a.inst(VaxOp::Cmpl, {vreg(0), vlit(10)});
    a.br(VaxOp::Blss, "less");
    a.inst(VaxOp::Movl, {vlit(1), vreg(1)}); // skipped
    a.halt();
    a.label("less");
    a.inst(VaxOp::Movl, {vlit(2), vreg(1)});
    a.halt();

    VaxCpu cpu;
    auto result = runProgram(cpu, a);
    ASSERT_TRUE(result.halted()) << result.message;
    EXPECT_EQ(cpu.reg(1), 2u);
}

TEST(Vax, CallsSavesAndRestoresRegisters)
{
    VaxAsm a;
    a.label("main");
    a.inst(VaxOp::Movl, {vimm(111), vreg(2)});
    a.inst(VaxOp::Movl, {vimm(222), vreg(3)});
    a.inst(VaxOp::Pushl, {vimm(41)}); // the argument
    a.calls(1, "func");
    a.halt();
    // func(x) { r2 = clobber; return x+1 in r0; }
    a.entry("func", 0x000c); // saves r2, r3
    a.inst(VaxOp::Movl, {vimm(9999), vreg(2)});
    a.inst(VaxOp::Movl, {vimm(8888), vreg(3)});
    a.inst(VaxOp::Addl3, {vdisp(AP, 0), vlit(1), vreg(0)});
    a.ret();

    VaxCpu cpu;
    auto result = runProgram(cpu, a);
    ASSERT_TRUE(result.halted()) << result.message;
    EXPECT_EQ(cpu.reg(0), 42u); // return value
    EXPECT_EQ(cpu.reg(2), 111u); // restored
    EXPECT_EQ(cpu.reg(3), 222u);
    EXPECT_EQ(cpu.stats().calls, 1u);
    EXPECT_EQ(cpu.stats().returns, 1u);
    EXPECT_EQ(cpu.stats().savedRegs, 2u);
    // SP restored (args popped by RET).
    EXPECT_EQ(cpu.reg(SP), VaxCpuOptions{}.stackTop);
}

TEST(Vax, RecursiveFactorialViaCalls)
{
    VaxAsm a;
    a.label("main");
    a.inst(VaxOp::Pushl, {vlit(6)});
    a.calls(1, "fact");
    a.halt();
    a.entry("fact", 0x0004); // saves r2
    a.inst(VaxOp::Movl, {vdisp(AP, 0), vreg(2)});
    a.inst(VaxOp::Cmpl, {vreg(2), vlit(1)});
    a.br(VaxOp::Bgtr, "recur");
    a.inst(VaxOp::Movl, {vlit(1), vreg(0)});
    a.ret();
    a.label("recur");
    a.inst(VaxOp::Subl3, {vlit(1), vreg(2), vreg(1)});
    a.inst(VaxOp::Pushl, {vreg(1)});
    a.calls(1, "fact");
    a.inst(VaxOp::Mull2, {vreg(2), vreg(0)});
    a.ret();

    VaxCpu cpu;
    auto result = runProgram(cpu, a);
    ASSERT_TRUE(result.halted()) << result.message;
    EXPECT_EQ(cpu.reg(0), 720u);
    EXPECT_EQ(cpu.stats().calls, 6u);
}


TEST(Vax, AutoIncrementAndDecrementScaleByWidth)
{
    VaxAsm a;
    a.label("main");
    a.inst(VaxOp::Movl, {vsym("buf"), vreg(1)});
    a.inst(VaxOp::Movb, {vlit(7), vinc(1)});  // buf[0], r1 += 1
    a.inst(VaxOp::Movb, {vlit(8), vinc(1)});  // buf[1], r1 += 1
    a.inst(VaxOp::Movl, {vimm(0x11223344), vinc(1)}); // misaligned? no:
    // r1 is buf+2 here; long write requires alignment, so realign first.
    a.halt();
    a.align(4);
    a.label("buf");
    a.space(16);
    VaxCpu cpu;
    VaxProgram prog = a.finish();
    cpu.load(prog);
    auto result = cpu.run();
    // The long write at buf+2 must fault on alignment.
    EXPECT_EQ(result.reason, sim::StopReason::Fault);
    EXPECT_EQ(cpu.memory().peek8(prog.symbols.at("buf")), 7u);
    EXPECT_EQ(cpu.memory().peek8(prog.symbols.at("buf") + 1), 8u);
}

TEST(Vax, PushPopViaAutoModesBalancesSp)
{
    VaxAsm a;
    a.label("main");
    a.inst(VaxOp::Movl, {vimm(111), vdec(SP)}); // push
    a.inst(VaxOp::Movl, {vimm(222), vdec(SP)});
    a.inst(VaxOp::Movl, {vinc(SP), vreg(2)});   // pop -> 222
    a.inst(VaxOp::Movl, {vinc(SP), vreg(3)});   // pop -> 111
    a.halt();
    VaxCpu cpu;
    cpu.load(a.finish());
    auto result = cpu.run();
    ASSERT_TRUE(result.halted()) << result.message;
    EXPECT_EQ(cpu.reg(2), 222u);
    EXPECT_EQ(cpu.reg(3), 111u);
    EXPECT_EQ(cpu.reg(SP), VaxCpuOptions{}.stackTop);
}

TEST(Vax, AshlShiftsBothDirections)
{
    VaxAsm a;
    a.label("main");
    a.inst(VaxOp::Movl, {vimm(0x80000000u), vreg(2)});
    a.inst(VaxOp::Ashl, {vimm(static_cast<uint32_t>(-4)), vreg(2),
                         vreg(3)}); // arithmetic right
    a.inst(VaxOp::Movl, {vlit(3), vreg(4)});
    a.inst(VaxOp::Ashl, {vlit(4), vreg(4), vreg(5)}); // left
    a.halt();
    VaxCpu cpu;
    cpu.load(a.finish());
    ASSERT_TRUE(cpu.run().halted());
    EXPECT_EQ(cpu.reg(3), 0xf8000000u);
    EXPECT_EQ(cpu.reg(5), 48u);
}

TEST(Vax, DivideByZeroFaults)
{
    VaxAsm a;
    a.label("main");
    a.inst(VaxOp::Movl, {vlit(10), vreg(2)});
    a.inst(VaxOp::Divl3, {vlit(0), vreg(2), vreg(3)});
    a.halt();
    VaxCpu cpu;
    cpu.load(a.finish());
    auto result = cpu.run();
    EXPECT_EQ(result.reason, sim::StopReason::Fault);
    EXPECT_NE(result.message.find("divide"), std::string::npos);
}

TEST(Vax, ConditionCodesAfterCmpAndTst)
{
    VaxAsm a;
    a.label("main");
    a.inst(VaxOp::Movl, {vimm(static_cast<uint32_t>(-5)), vreg(2)});
    a.inst(VaxOp::Cmpl, {vreg(2), vlit(3)}); // -5 vs 3
    a.br(VaxOp::Blss, "ok1");
    a.inst(VaxOp::Movl, {vlit(1), vreg(10)});
    a.label("ok1");
    a.br(VaxOp::Bgtru, "ok2"); // unsigned: 0xfffffffb > 3
    a.inst(VaxOp::Movl, {vlit(2), vreg(10)});
    a.label("ok2");
    a.inst(VaxOp::Tstl, {vreg(2)});
    a.br(VaxOp::Bneq, "ok3");
    a.inst(VaxOp::Movl, {vlit(3), vreg(10)});
    a.label("ok3");
    a.halt();
    VaxCpu cpu;
    cpu.load(a.finish());
    ASSERT_TRUE(cpu.run().halted());
    EXPECT_EQ(cpu.reg(10), 0u); // no failure path taken
}

TEST(Vax, IstreamBytesAndAverageLength)
{
    VaxAsm a;
    a.label("main");
    a.inst(VaxOp::Movl, {vimm(5), vreg(0)}); // 1 + 5 + 1 = 7 bytes
    a.nop();                                 // 1 byte
    a.halt();                                // 1 byte
    VaxCpu cpu;
    cpu.load(a.finish());
    ASSERT_TRUE(cpu.run().halted());
    EXPECT_EQ(cpu.stats().istreamBytes, 9u);
    EXPECT_EQ(cpu.stats().instructions, 3u);
    EXPECT_NEAR(cpu.stats().avgInstBytes(), 3.0, 0.01);
}

TEST(Vax, CodeBytesCountsInstructionsOnly)
{
    VaxAsm a;
    a.label("main");
    a.halt(); // 1 byte of code
    a.word(123); // 4 bytes of data
    a.ascii("abc"); // 3 bytes of data
    VaxProgram prog = a.finish();
    EXPECT_EQ(prog.codeBytes, 1u);
    EXPECT_EQ(prog.totalBytes(), 8u);
    EXPECT_EQ(prog.instructionCount, 1u);
}

TEST(Vax, TraceModeDisassemblesEachInstruction)
{
    VaxAsm a;
    a.label("main");
    a.inst(VaxOp::Movl, {vlit(5), vreg(0)});
    a.halt();
    std::ostringstream trace;
    VaxCpuOptions opts;
    opts.trace = true;
    opts.traceOut = &trace;
    VaxCpu cpu(opts);
    cpu.load(a.finish());
    ASSERT_TRUE(cpu.run().halted());
    EXPECT_NE(trace.str().find("movl #5, r0"), std::string::npos);
    EXPECT_NE(trace.str().find("halt"), std::string::npos);
}

} // namespace
