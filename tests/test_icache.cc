/**
 * @file
 * Instruction-cache model tests: deterministic hit/miss behaviour,
 * capacity and conflict effects, and monotone improvement with size on
 * real fetch streams.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "sim/cpu.hh"
#include "sim/icache.hh"
#include "support/logging.hh"
#include "workloads/workload.hh"

namespace {

using namespace risc1;
using sim::ICacheConfig;
using sim::ICacheModel;

TEST(ICache, ColdMissThenHitsWithinLine)
{
    ICacheModel cache(ICacheConfig{64, 16, 4});
    EXPECT_EQ(cache.access(0x1000), 4u); // cold
    EXPECT_EQ(cache.access(0x1004), 0u); // same line
    EXPECT_EQ(cache.access(0x100c), 0u);
    EXPECT_EQ(cache.access(0x1010), 4u); // next line
}

TEST(ICache, ConflictsEvict)
{
    // 64B / 16B lines = 4 sets; 0x1000 and 0x1040 share set 0.
    ICacheModel cache(ICacheConfig{64, 16, 4});
    EXPECT_EQ(cache.access(0x1000), 4u);
    EXPECT_EQ(cache.access(0x1040), 4u); // evicts
    EXPECT_EQ(cache.access(0x1000), 4u); // miss again
}

TEST(ICache, FlushInvalidates)
{
    ICacheModel cache(ICacheConfig{64, 16, 4});
    EXPECT_EQ(cache.access(0x2000), 4u);
    EXPECT_EQ(cache.access(0x2000), 0u);
    cache.flush();
    EXPECT_EQ(cache.access(0x2000), 4u);
}

TEST(ICache, AddressZeroLineIsCacheableToo)
{
    ICacheModel cache(ICacheConfig{64, 16, 4});
    EXPECT_EQ(cache.access(0x0), 4u);
    EXPECT_EQ(cache.access(0x4), 0u); // tag scheme must not treat the
                                      // zero line as always-invalid
}

TEST(ICache, RejectsBadGeometry)
{
    EXPECT_THROW(ICacheModel(ICacheConfig{100, 16, 4}), FatalError);
    EXPECT_THROW(ICacheModel(ICacheConfig{64, 12, 4}), FatalError);
    EXPECT_THROW(ICacheModel(ICacheConfig{16, 64, 4}), FatalError);
}

TEST(ICache, TightLoopFitsAndStreams)
{
    // A loop body well under 256B: after the first iteration, all hits.
    assembler::Program prog = assembler::assembleOrDie(R"(
_start: mov   100, r16
loop:   subs  r16, 1, r16
        add   r2, 1, r2
        bne   loop
        halt
)");
    sim::Cpu cpu;
    cpu.load(prog);
    ICacheModel cache(ICacheConfig{256, 16, 4});
    while (!cpu.halted()) {
        cache.access(cpu.pc());
        cpu.step();
    }
    // Cold misses only: the loop occupies at most 2 lines.
    EXPECT_LE(cache.stats().misses, 3u);
    EXPECT_GT(cache.stats().accesses, 250u);
    EXPECT_LT(cache.stats().missRate(), 0.02);
}

TEST(ICache, MissRateFallsMonotonicallyWithSizeOnRealCode)
{
    const auto *wl = workloads::findWorkload("i_quicksort");
    ASSERT_NE(wl, nullptr);
    assembler::Program prog = workloads::buildRisc(*wl,
                                                   wl->defaultScale);
    double prev = 1.0;
    for (uint32_t size : {64u, 128u, 256u, 512u, 1024u}) {
        sim::Cpu cpu;
        cpu.load(prog);
        ICacheModel cache(ICacheConfig{size, 16, 4});
        while (!cpu.halted())
            cache.access(cpu.pc()), cpu.step();
        const double rate = cache.stats().missRate();
        EXPECT_LE(rate, prev + 1e-12) << size;
        prev = rate;
    }
    // A 1KB cache captures a quicksort almost entirely.
    EXPECT_LT(prev, 0.01);
}

} // namespace
