/**
 * @file
 * vax80 disassembler tests: representative encodings of every operand
 * mode, branch targets, and whole-suite linear disassembly sanity.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "support/logging.hh"
#include "vax/disasm.hh"
#include "workloads/workload.hh"

namespace {

using namespace risc1;
using namespace risc1::vax;

std::string
firstLine(VaxAsm &a)
{
    VaxProgram prog = a.finish();
    return disassembleVaxAt(prog.bytes, prog.entry - prog.base,
                            prog.entry)
        .text;
}

TEST(VaxDisasm, OperandModes)
{
    {
        VaxAsm a;
        a.label("main");
        a.inst(VaxOp::Movl, {vlit(5), vreg(3)});
        EXPECT_EQ(firstLine(a), "movl #5, r3");
    }
    {
        VaxAsm a;
        a.label("main");
        a.inst(VaxOp::Movl, {vimm(0x12345), vdef(2)});
        EXPECT_EQ(firstLine(a), "movl #0x12345, (r2)");
    }
    {
        VaxAsm a;
        a.label("main");
        a.inst(VaxOp::Addl2, {vdisp(13, -8), vreg(0)});
        EXPECT_EQ(firstLine(a), "addl2 -8(fp), r0");
    }
    {
        VaxAsm a;
        a.label("main");
        a.inst(VaxOp::Pushl, {vidx(4, vdef(2))});
        EXPECT_EQ(firstLine(a), "pushl (r2)[r4]");
    }
    {
        VaxAsm a;
        a.label("main");
        a.inst(VaxOp::Movl, {vinc(6), vdec(14)});
        EXPECT_EQ(firstLine(a), "movl (r6)+, -(sp)");
    }
    {
        VaxAsm a;
        a.label("main");
        a.inst(VaxOp::Movl, {vabs(0xf00), vreg(1)});
        EXPECT_EQ(firstLine(a), "movl @0xf00, r1");
    }
}

TEST(VaxDisasm, BranchShowsAbsoluteTarget)
{
    VaxAsm a;
    a.label("main");
    a.br(VaxOp::Beql, "dst");
    a.nop();
    a.nop();
    a.label("dst");
    a.halt();
    VaxProgram prog = a.finish();
    auto line = disassembleVaxAt(prog.bytes, 0, prog.base);
    ASSERT_TRUE(line.valid);
    EXPECT_EQ(line.text, strprintf("beql 0x%x", prog.symbols.at("dst")));
}

TEST(VaxDisasm, CallsAndRet)
{
    VaxAsm a;
    a.label("main");
    a.calls(2, "f");
    a.entry("f", 0);
    a.ret();
    VaxProgram prog = a.finish();
    auto line = disassembleVaxAt(prog.bytes, 0, prog.base);
    ASSERT_TRUE(line.valid);
    EXPECT_EQ(line.text.substr(0, 9), "calls #2,");
}

TEST(VaxDisasm, InvalidByteRendersAsData)
{
    std::vector<uint8_t> bytes = {0xee};
    auto line = disassembleVaxAt(bytes, 0, 0x1000);
    EXPECT_FALSE(line.valid);
    EXPECT_EQ(line.text, ".byte 0xee");
}

class SuiteDisasm : public ::testing::TestWithParam<workloads::Workload>
{};

TEST_P(SuiteDisasm, LinearDisassemblyDecodesTheEntryBlock)
{
    const auto &wl = GetParam();
    VaxProgram prog = wl.buildVax(wl.defaultScale);
    const std::string text = disassembleVaxProgram(prog, 64);
    EXPECT_EQ(text.find("<undecodable>"), std::string::npos) << text;
    EXPECT_GT(std::count(text.begin(), text.end(), '\n'), 3);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, SuiteDisasm,
    ::testing::ValuesIn(workloads::allWorkloads()),
    [](const ::testing::TestParamInfo<workloads::Workload> &info) {
        return info.param.name;
    });

} // namespace
