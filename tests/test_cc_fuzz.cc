/**
 * @file
 * Whole-program tinyc fuzzing: randomly generated programs (functions,
 * loops, branches, mem[] traffic, cross-function calls) are executed by
 * a host-side reference interpreter and must produce the same result
 * when compiled for RISC I and for vax80. Programs are constructed to
 * terminate: loops count down a dedicated variable, and functions call
 * only earlier functions (no recursion).
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "asm/assembler.hh"
#include "cc/compiler.hh"
#include "cc/parser.hh"
#include "sim/cpu.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "vax/cpu.hh"

namespace {

using namespace risc1;

// ---- host reference interpreter over the real AST -------------------------

/** Interprets a parsed tinyc Unit with the language's semantics. */
class HostInterp
{
  public:
    explicit HostInterp(const cc::Unit &unit, uint32_t mem_words)
        : unit_(unit), mem_(mem_words, 0)
    {}

    uint32_t
    runMain()
    {
        return call(*unit_.find("main"), {});
    }

  private:
    struct ReturnSignal
    {
        uint32_t value;
    };

    uint32_t
    call(const cc::Function &fn, const std::vector<uint32_t> &args)
    {
        std::map<std::string, uint32_t> frame;
        for (size_t i = 0; i < fn.params.size(); ++i)
            frame[fn.params[i]] = args[i];
        try {
            execBlock(fn.body, frame);
        } catch (const ReturnSignal &ret) {
            return ret.value;
        }
        return 0; // implicit return 0
    }

    void
    execBlock(const std::vector<cc::StmtPtr> &stmts,
              std::map<std::string, uint32_t> &frame)
    {
        for (const cc::StmtPtr &stmt : stmts)
            exec(*stmt, frame);
    }

    void
    exec(const cc::Stmt &stmt, std::map<std::string, uint32_t> &frame)
    {
        using K = cc::Stmt::Kind;
        switch (stmt.kind) {
          case K::VarDecl:
            frame[stmt.name] = stmt.value ? eval(*stmt.value, frame) : 0;
            return;
          case K::Assign:
            frame[stmt.name] = eval(*stmt.value, frame);
            return;
          case K::MemAssign: {
            const uint32_t index = eval(*stmt.index, frame);
            const uint32_t value = eval(*stmt.value, frame);
            ASSERT_LT(index, mem_.size());
            mem_[index] = value;
            return;
          }
          case K::If:
            if (eval(*stmt.cond, frame))
                execBlock(stmt.body, frame);
            else
                execBlock(stmt.orelse, frame);
            return;
          case K::While:
            while (eval(*stmt.cond, frame))
                execBlock(stmt.body, frame);
            return;
          case K::Return:
            throw ReturnSignal{stmt.value ? eval(*stmt.value, frame)
                                          : 0};
          case K::ExprStmt:
            eval(*stmt.value, frame);
            return;
        }
    }

    uint32_t
    eval(const cc::Expr &e, std::map<std::string, uint32_t> &frame)
    {
        using K = cc::Expr::Kind;
        switch (e.kind) {
          case K::Number:
            return e.number;
          case K::Var:
            return frame.at(e.name);
          case K::Unary: {
            const uint32_t v = eval(*e.lhs, frame);
            switch (e.unaryOp) {
              case '-': return 0u - v;
              case '~': return ~v;
              case '!': return v == 0;
            }
            ADD_FAILURE() << "bad unary";
            return 0;
          }
          case K::Mem: {
            const uint32_t index = eval(*e.index, frame);
            EXPECT_LT(index, mem_.size());
            return index < mem_.size() ? mem_[index] : 0;
          }
          case K::Call: {
            std::vector<uint32_t> args;
            for (const cc::ExprPtr &arg : e.args)
                args.push_back(eval(*arg, frame));
            return call(*unit_.find(e.name), args);
          }
          case K::Binary: {
            const uint32_t a = eval(*e.lhs, frame);
            const uint32_t b = eval(*e.rhs, frame);
            const std::string &o = e.binop;
            if (o == "+") return a + b;
            if (o == "-") return a - b;
            if (o == "*") return a * b;
            if (o == "/") return b ? a / b : 0;
            if (o == "%") return b ? a % b : 0;
            if (o == "&") return a & b;
            if (o == "|") return a | b;
            if (o == "^") return a ^ b;
            if (o == "<<") return a << (b & 31);
            if (o == ">>") return a >> (b & 31);
            if (o == "==") return a == b;
            if (o == "!=") return a != b;
            if (o == "<") return a < b;
            if (o == "<=") return a <= b;
            if (o == ">") return a > b;
            if (o == ">=") return a >= b;
            if (o == "&&") return a && b;
            if (o == "||") return a || b;
            ADD_FAILURE() << "bad op " << o;
            return 0;
          }
        }
        return 0;
    }

    const cc::Unit &unit_;
    std::vector<uint32_t> mem_;
};

// ---- random-program generator -----------------------------------------------

/** Emits random, terminating tinyc programs within back-end limits. */
class ProgramGen
{
  public:
    explicit ProgramGen(uint64_t seed) : rng_(seed) {}

    std::string
    generate()
    {
        src_.clear();
        const unsigned nfuncs = 1 + static_cast<unsigned>(rng_.below(3));
        funcs_.clear();
        for (unsigned i = 0; i < nfuncs; ++i)
            genFunction(strprintf("f%u", i),
                        static_cast<unsigned>(rng_.below(3)));
        genFunction("main", 0);
        return src_;
    }

  private:
    struct FuncSig
    {
        std::string name;
        unsigned params;
    };

    void
    genFunction(const std::string &name, unsigned nparams)
    {
        vars_.clear();
        loopVars_.clear();
        nextVar_ = 0;
        for (unsigned i = 0; i < nparams; ++i)
            vars_.push_back(strprintf("p%u", i));

        src_ += name + "(";
        for (unsigned i = 0; i < nparams; ++i)
            src_ += std::string(i ? ", " : "") + strprintf("p%u", i);
        src_ += ") {\n";
        genStmts(2, 1 + static_cast<unsigned>(rng_.below(4)));
        src_ += strprintf("    return %s;\n}\n", expr(2).c_str());
        funcs_.push_back(FuncSig{name, nparams});
    }

    void
    genStmts(unsigned depth, unsigned count)
    {
        for (unsigned i = 0; i < count; ++i)
            genStmt(depth);
    }

    void
    genStmt(unsigned depth)
    {
        const unsigned kind = static_cast<unsigned>(rng_.below(6));
        // Local budget: the RISC back end has 9 register slots for
        // locals + temps; keep locals <= 4 and expressions shallow.
        if (kind == 0 && nextVar_ < 4) {
            const std::string name = strprintf("v%u", nextVar_++);
            src_ += strprintf("    var %s = %s;\n", name.c_str(),
                              expr(depth).c_str());
            vars_.push_back(name);
            return;
        }
        if (kind == 1 && !vars_.empty()) {
            // Assign to a non-loop variable only.
            const std::string &name = vars_[rng_.below(vars_.size())];
            src_ += strprintf("    %s = %s;\n", name.c_str(),
                              expr(depth).c_str());
            return;
        }
        if (kind == 2) {
            src_ += strprintf("    mem[(%s) %% 64] = %s;\n",
                              expr(1).c_str(), expr(depth).c_str());
            return;
        }
        if (kind == 3 && depth > 0) {
            src_ += strprintf("    if (%s) {\n", expr(depth).c_str());
            const size_t scope = vars_.size();
            genStmts(depth - 1, 1 + static_cast<unsigned>(rng_.below(2)));
            vars_.resize(scope); // conditional declarations go out of use
            if (rng_.chance(1, 2)) {
                src_ += "    } else {\n";
                genStmts(depth - 1,
                         1 + static_cast<unsigned>(rng_.below(2)));
                vars_.resize(scope);
            }
            src_ += "    }\n";
            return;
        }
        if (kind == 4 && depth > 0 && nextVar_ < 4) {
            // Bounded countdown loop; the loop variable is never
            // assigned inside the body (loopVars_ are excluded from
            // assignment targets) and its declaration always executes.
            const std::string name = strprintf("v%u", nextVar_++);
            src_ += strprintf("    var %s = %llu;\n", name.c_str(),
                              static_cast<unsigned long long>(
                                  1 + rng_.below(6)));
            src_ += strprintf("    while (%s) {\n", name.c_str());
            loopVars_.push_back(name);
            const size_t scope = vars_.size();
            genStmts(depth - 1, 1 + static_cast<unsigned>(rng_.below(2)));
            vars_.resize(scope);
            src_ += strprintf("        %s = %s - 1;\n", name.c_str(),
                              name.c_str());
            src_ += "    }\n";
            loopVars_.pop_back();
            vars_.push_back(name); // readable afterwards (it is 0)
            return;
        }
        src_ += strprintf("    %s;\n", expr(depth).c_str());
    }

    /** Random expression of bounded depth (parenthesized). */
    std::string
    expr(unsigned depth)
    {
        const unsigned pick = static_cast<unsigned>(rng_.below(8));
        if (depth == 0 || pick < 2) {
            if (!vars_.empty() && rng_.chance(1, 2))
                return vars_[rng_.below(vars_.size())];
            if (!loopVars_.empty() && rng_.chance(1, 3))
                return loopVars_.back();
            return strprintf("%llu", static_cast<unsigned long long>(
                                         rng_.below(1000)));
        }
        if (pick == 2)
            return strprintf("mem[(%s) %% 64]", expr(depth - 1).c_str());
        if (pick == 3 && !funcs_.empty()) {
            const FuncSig &callee = funcs_[rng_.below(funcs_.size())];
            std::string out = callee.name + "(";
            for (unsigned i = 0; i < callee.params; ++i)
                out += std::string(i ? ", " : "") + expr(depth - 1);
            return out + ")";
        }
        if (pick == 4) {
            static const char *unary[] = {"-", "~", "!"};
            return strprintf("(%s(%s))", unary[rng_.below(3)],
                             expr(depth - 1).c_str());
        }
        static const char *ops[] = {"+",  "-",  "*",  "/",  "%",  "&",
                                    "|",  "^",  "<<", ">>", "==", "!=",
                                    "<",  "<=", ">",  ">=", "&&", "||"};
        const std::string o = ops[rng_.below(std::size(ops))];
        std::string rhs = expr(depth - 1);
        if (o == "/" || o == "%")
            rhs = "(" + rhs + " | 1)";
        return "(" + expr(depth - 1) + " " + o + " " + rhs + ")";
    }

    Rng rng_;
    unsigned nextVar_ = 0;
    std::string src_;
    std::vector<FuncSig> funcs_;
    std::vector<std::string> vars_;
    std::vector<std::string> loopVars_;
};

// ---- the differential ----------------------------------------------------------

class CcProgramFuzz : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(CcProgramFuzz, GeneratedProgramsAgreeEverywhere)
{
    ProgramGen gen(GetParam() * 99991 + 17);
    for (int trial = 0; trial < 15; ++trial) {
        const std::string src = gen.generate();

        cc::ParseResult parsed = cc::parse(src);
        ASSERT_TRUE(parsed.ok) << parsed.error << "\n" << src;
        HostInterp host(parsed.unit, 4096);
        const uint32_t expected = host.runMain();

        cc::RiscCompileResult risc_cc = cc::compileToRiscAsm(src);
        ASSERT_TRUE(risc_cc.ok) << risc_cc.error << "\n" << src;
        sim::Cpu risc;
        risc.load(assembler::assembleOrDie(risc_cc.assembly));
        auto risc_run = risc.run();
        ASSERT_TRUE(risc_run.halted()) << risc_run.message << "\n"
                                       << src;
        EXPECT_EQ(risc.memory().peek32(cc::CcResultAddr), expected)
            << "RISC I\n" << src;

        cc::VaxCompileResult vax_cc = cc::compileToVax(src);
        ASSERT_TRUE(vax_cc.ok) << vax_cc.error << "\n" << src;
        vax::VaxCpu vaxc;
        vaxc.load(vax_cc.program);
        auto vax_run = vaxc.run();
        ASSERT_TRUE(vax_run.halted()) << vax_run.message << "\n" << src;
        EXPECT_EQ(vaxc.memory().peek32(cc::CcResultAddr), expected)
            << "vax80\n" << src;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CcProgramFuzz,
                         ::testing::Range(uint64_t{0}, uint64_t{6}));

} // namespace
