/**
 * @file
 * The suite's strongest correctness check: every workload runs on BOTH
 * machines and must produce the host oracle's exact result. Any bug in
 * either simulator, the assembler, the builder, or the delay-slot
 * optimizer that changes semantics fails here.
 */

#include <gtest/gtest.h>

#include "sim/cpu.hh"
#include "vax/cpu.hh"
#include "workloads/workload.hh"

namespace {

using namespace risc1;
using workloads::allWorkloads;
using workloads::ResultAddr;
using workloads::Workload;

class WorkloadCross : public ::testing::TestWithParam<Workload>
{};

TEST_P(WorkloadCross, RiscMatchesOracle)
{
    const Workload &wl = GetParam();
    sim::Cpu cpu;
    cpu.load(workloads::buildRisc(wl, wl.defaultScale));
    auto result = cpu.run();
    ASSERT_TRUE(result.halted())
        << wl.name << ": " << result.message
        << " (reason " << static_cast<int>(result.reason) << ")";
    EXPECT_EQ(cpu.memory().peek32(ResultAddr),
              wl.expected(wl.defaultScale))
        << wl.name;
}

TEST_P(WorkloadCross, RiscMatchesOracleWithoutSlotFilling)
{
    const Workload &wl = GetParam();
    assembler::AsmOptions opts;
    opts.fillDelaySlots = false;
    sim::Cpu cpu;
    cpu.load(workloads::buildRisc(wl, wl.defaultScale, opts));
    auto result = cpu.run();
    ASSERT_TRUE(result.halted()) << wl.name << ": " << result.message;
    EXPECT_EQ(cpu.memory().peek32(ResultAddr),
              wl.expected(wl.defaultScale))
        << wl.name;
}

TEST_P(WorkloadCross, RiscMatchesOracleWithTwoWindows)
{
    // Degenerate window file: every call overflows. Results must not
    // change — only the trap counts.
    const Workload &wl = GetParam();
    sim::CpuOptions options;
    options.windows.numWindows = 2;
    sim::Cpu cpu(options);
    cpu.load(workloads::buildRisc(wl, wl.defaultScale));
    auto result = cpu.run();
    ASSERT_TRUE(result.halted()) << wl.name << ": " << result.message;
    EXPECT_EQ(cpu.memory().peek32(ResultAddr),
              wl.expected(wl.defaultScale))
        << wl.name;
    if (wl.recursive)
        EXPECT_GT(cpu.stats().windowOverflows, 0u) << wl.name;
}

TEST_P(WorkloadCross, VaxMatchesOracle)
{
    const Workload &wl = GetParam();
    vax::VaxCpu cpu;
    cpu.load(wl.buildVax(wl.defaultScale));
    auto result = cpu.run();
    ASSERT_TRUE(result.halted()) << wl.name << ": " << result.message;
    EXPECT_EQ(cpu.memory().peek32(ResultAddr),
              wl.expected(wl.defaultScale))
        << wl.name;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, WorkloadCross, ::testing::ValuesIn(allWorkloads()),
    [](const ::testing::TestParamInfo<Workload> &info) {
        return info.param.name;
    });

} // namespace
