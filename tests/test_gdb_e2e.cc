/**
 * @file
 * End-to-end GDB-stub test: spawn the real risc1_gdb driver, attach
 * over TCP with a scripted RSP client, set a breakpoint, continue to
 * it, compare every register against an in-process reference
 * interpreter, reverse-step one instruction and land on the prior PC —
 * and the whole transcript must be byte-identical across the threaded
 * and superblock engines (the acceptance pin for "time travel is
 * engine-independent").
 *
 * The driver binary path comes from $RISC1_GDB_EXE when set, else the
 * RISC1_GDB_EXE_PATH compile definition (wired by tests/CMakeLists).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "debug/rsp.hh"
#include "debug/transport.hh"
#include "sim/cpu.hh"
#include "workloads/workload.hh"

namespace {

using namespace risc1;

std::string
driverPath()
{
    if (const char *env = std::getenv("RISC1_GDB_EXE"))
        return env;
#ifdef RISC1_GDB_EXE_PATH
    return RISC1_GDB_EXE_PATH;
#else
    return {};
#endif
}

/** The 33-word `g` payload the stub should serve for `cpu`'s state. */
std::string
expectedGPacket(const sim::Cpu &cpu)
{
    std::string out;
    for (unsigned r = 0; r < 32; ++r)
        out += debug::hexWordLe(cpu.reg(r));
    out += debug::hexWordLe(cpu.pc());
    return out;
}

/** Scripted RSP client over one TCP connection. */
class RspClient
{
  public:
    explicit RspClient(std::unique_ptr<debug::Channel> channel)
        : ch_(std::move(channel))
    {}

    /** One command/response exchange (handles acks until no-ack). */
    std::string
    roundTrip(const std::string &payload)
    {
        const std::string wire = debug::frame(payload);
        ch_->send(wire.data(), wire.size());
        const std::string reply = readPacket();
        if (!noAck_)
            ch_->send("+", 1);
        return reply;
    }

    void
    negotiate()
    {
        const std::string features =
            roundTrip("qSupported:swbreak+");
        ASSERT_NE(features.find("ReverseStep+"), std::string::npos);
        ASSERT_EQ(roundTrip("QStartNoAckMode"), "OK");
        noAck_ = true;
    }

  private:
    std::string
    readPacket()
    {
        for (;;) {
            debug::FrameDecoder::Event event = decoder_.next();
            if (event == debug::FrameDecoder::Event::Packet)
                return decoder_.payload();
            if (event != debug::FrameDecoder::Event::NeedMore)
                continue; // stub's `+` acks before no-ack mode
            char buf[1024];
            const size_t got = ch_->recv(buf, sizeof(buf));
            if (got == 0)
                return {};
            decoder_.push(buf, got);
        }
    }

    std::unique_ptr<debug::Channel> ch_;
    debug::FrameDecoder decoder_;
    bool noAck_ = false;
};

/** One running risc1_gdb process, killed on destruction. */
class Driver
{
  public:
    Driver(const std::string &exe, const std::string &engine)
    {
        portFile_ = "risc1_gdb_port_" + std::to_string(getpid()) + "_" +
                    engine;
        std::remove(portFile_.c_str());
        pid_ = fork();
        if (pid_ == 0) {
            // Quiet child: the banner goes nowhere.
            std::freopen("/dev/null", "w", stdout);
            execl(exe.c_str(), exe.c_str(), "fibonacci", "--engine",
                  engine.c_str(), "--port", "0", "--port-file",
                  portFile_.c_str(), "--once",
                  "--checkpoint-interval", "100",
                  static_cast<char *>(nullptr));
            std::_Exit(127);
        }
    }

    ~Driver()
    {
        if (pid_ > 0) {
            int status = 0;
            if (waitpid(pid_, &status, WNOHANG) == 0) {
                kill(pid_, SIGKILL);
                waitpid(pid_, &status, 0);
            }
        }
        std::remove(portFile_.c_str());
    }

    /** Wait for the driver to publish its port; 0 on timeout. */
    uint16_t
    port()
    {
        for (int tries = 0; tries < 500; ++tries) {
            std::ifstream in(portFile_);
            unsigned port = 0;
            if (in >> port && port != 0)
                return static_cast<uint16_t>(port);
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        return 0;
    }

  private:
    pid_t pid_ = -1;
    std::string portFile_;
};

/**
 * Attach to a freshly spawned driver for `engine`, drive the scripted
 * session, and return the transcript: the `g` payload at the
 * breakpoint and the `g` payload after one reverse step.
 */
std::pair<std::string, std::string>
runSession(const std::string &engine, uint32_t bp,
           const std::string &expect_at_bp,
           const std::string &expect_after_bs)
{
    const std::string exe = driverPath();
    Driver driver(exe, engine);
    const uint16_t port = driver.port();
    EXPECT_NE(port, 0) << "driver did not publish a port (" << engine
                       << ")";
    if (port == 0)
        return {};

    RspClient client(debug::connectTcp("127.0.0.1", port));
    client.negotiate();

    char zpkt[32];
    std::snprintf(zpkt, sizeof zpkt, "Z0,%x,4", bp);
    EXPECT_EQ(client.roundTrip(zpkt), "OK") << engine;
    EXPECT_EQ(client.roundTrip("vCont;c"), "T05swbreak:;") << engine;

    const std::string at_bp = client.roundTrip("g");
    EXPECT_EQ(at_bp, expect_at_bp)
        << engine << ": registers at the breakpoint differ from the "
        << "reference interpreter";

    EXPECT_EQ(client.roundTrip("bs"), "S05") << engine;
    const std::string after_bs = client.roundTrip("g");
    EXPECT_EQ(after_bs, expect_after_bs)
        << engine << ": reverse-step did not land on the prior state";

    EXPECT_EQ(client.roundTrip("k"), "");
    return {at_bp, after_bs};
}

TEST(GdbEndToEnd, BreakContinueReverseMatchesReferenceAcrossEngines)
{
    const std::string exe = driverPath();
    ASSERT_FALSE(exe.empty()) << "no RISC1_GDB_EXE configured";
    ASSERT_EQ(access(exe.c_str(), X_OK), 0) << exe;

    // Reference interpreter (engine-independent architectural state):
    // the pc after 200 instructions is the breakpoint; its first hit
    // defines the expected register file.
    sim::Cpu probe;
    probe.load(workloads::buildRisc(
        *workloads::findWorkload("fibonacci"), 15));
    ASSERT_EQ(probe.runUntil(200).reason, sim::StopReason::Paused);
    const uint32_t bp = probe.pc();

    sim::Cpu ref;
    ref.load(workloads::buildRisc(
        *workloads::findWorkload("fibonacci"), 15));
    uint64_t first_hit = 0;
    while (ref.pc() != bp) {
        ref.step();
        ++first_hit;
        ASSERT_LT(first_hit, 1000u) << "breakpoint never reached";
    }
    const std::string expect_at_bp = expectedGPacket(ref);

    sim::Cpu prior;
    prior.load(workloads::buildRisc(
        *workloads::findWorkload("fibonacci"), 15));
    ASSERT_EQ(prior.runUntil(first_hit - 1).reason,
              sim::StopReason::Paused);
    const std::string expect_after_bs = expectedGPacket(prior);

    const auto threaded =
        runSession("threaded", bp, expect_at_bp, expect_after_bs);
    const auto superblock =
        runSession("superblock", bp, expect_at_bp, expect_after_bs);

    // The acceptance pin: byte-identical transcripts across engines.
    EXPECT_EQ(threaded, superblock);
}

} // namespace
