/**
 * @file
 * The campaign fleet coordinator (core/fleet): shard-cache record
 * round-trips, typed rejection of every poisoned-cache shape
 * (truncated, foreign magic, stale version, key mismatch, bit flips),
 * and the coordinator invariants — an in-process fleet reproduces
 * faultCampaign byte-for-byte at any shard size, an interrupted
 * (halt-after) campaign resumes warm from the cache to the same rows,
 * and malformed cache entries are transparently recomputed, never
 * merged. Subprocess workers, the watchdog, and the re-queue path are
 * exercised end-to-end by the bench_campaign_fleet_determinism ctest
 * (bench/fleet_determinism.cmake), which needs real worker binaries.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "core/experiments.hh"
#include "core/fleet.hh"

namespace {

namespace fs = std::filesystem;
using namespace risc1;
using core::FaultCampaignRow;
using core::ShardCacheError;
using core::ShardParams;

// Small but non-trivial campaign: a few injections over the whole
// suite. Shared across tests (the campaign is a pure function of
// (injections, seed), so computing the expectation once is sound).
constexpr unsigned Injections = 2;
constexpr uint64_t Seed = 11;

const std::vector<FaultCampaignRow> &
expectedRows()
{
    static const std::vector<FaultCampaignRow> rows =
        core::faultCampaign(Injections, Seed, 2, true);
    return rows;
}

uint64_t
gridTotal()
{
    return uint64_t{expectedRows().size()} * Injections;
}

ShardParams
testParams(uint64_t first, uint64_t last)
{
    return core::shardParams(Injections, Seed, first, last, {});
}

/** Row equality via the serializer: every field, byte for byte. */
void
expectRowsEqual(const std::vector<FaultCampaignRow> &got,
                const std::vector<FaultCampaignRow> &want)
{
    const ShardParams params = testParams(0, gridTotal());
    EXPECT_EQ(core::serializeShardRecord(params, got),
              core::serializeShardRecord(params, want));
}

/** A scratch directory removed on scope exit. */
class TempDir
{
  public:
    TempDir()
        : path_(fs::temp_directory_path() /
                ("risc1_fleet_test_" + std::to_string(::getpid()) +
                 "_" + std::to_string(counter_++)))
    {
        fs::create_directories(path_);
    }

    ~TempDir() { fs::remove_all(path_); }

    std::string str() const { return path_.string(); }
    const fs::path &path() const { return path_; }

  private:
    static int counter_;
    fs::path path_;
};

int TempDir::counter_ = 0;

ShardCacheError::Kind
rejectKind(const std::vector<uint8_t> &bytes, const ShardParams &expect,
           std::string *message = nullptr)
{
    try {
        (void)core::deserializeShardRecord(bytes, expect);
    } catch (const ShardCacheError &err) {
        EXPECT_FALSE(std::string(err.what()).empty());
        if (message)
            *message = err.what();
        return err.kind();
    }
    ADD_FAILURE() << "poisoned record unexpectedly accepted";
    return ShardCacheError::Kind::Io;
}

TEST(ShardRecord, RoundTripsCampaignRows)
{
    const ShardParams params = testParams(0, gridTotal());
    const std::vector<uint8_t> bytes =
        core::serializeShardRecord(params, expectedRows());
    expectRowsEqual(core::deserializeShardRecord(bytes, params),
                    expectedRows());
}

TEST(ShardRecord, KeySeparatesEveryDeterminant)
{
    const ShardParams base = testParams(0, 8);
    const uint64_t key = core::shardKey(base);
    ShardParams p = base;
    p.seed ^= 1;
    EXPECT_NE(core::shardKey(p), key);
    p = base;
    p.injections += 1;
    EXPECT_NE(core::shardKey(p), key);
    p = base;
    p.first += 1;
    EXPECT_NE(core::shardKey(p), key);
    p = base;
    p.last += 1;
    EXPECT_NE(core::shardKey(p), key);
    p = base;
    p.recover = true;
    p.checkpointInterval = 5000;
    EXPECT_NE(core::shardKey(p), key);
    p = base;
    p.configHash ^= 1;
    EXPECT_NE(core::shardKey(p), key);
    p = base;
    p.imageHash ^= 1;
    EXPECT_NE(core::shardKey(p), key);
}

TEST(ShardRecord, TruncationRejectedWithOffset)
{
    const ShardParams params = testParams(0, gridTotal());
    const std::vector<uint8_t> bytes =
        core::serializeShardRecord(params, expectedRows());
    for (const size_t len : {size_t{0}, size_t{3}, size_t{20},
                             bytes.size() / 2, bytes.size() - 1}) {
        std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + len);
        std::string message;
        EXPECT_EQ(rejectKind(cut, params, &message),
                  ShardCacheError::Kind::Truncated)
            << "length " << len;
        EXPECT_NE(message.find("byte"), std::string::npos)
            << "length " << len << ": " << message;
    }
}

TEST(ShardRecord, ForeignMagicRejected)
{
    const ShardParams params = testParams(0, gridTotal());
    std::vector<uint8_t> bytes =
        core::serializeShardRecord(params, expectedRows());
    bytes[0] ^= 0xff;
    std::string message;
    EXPECT_EQ(rejectKind(bytes, params, &message),
              ShardCacheError::Kind::BadMagic);
    EXPECT_NE(message.find("at byte"), std::string::npos) << message;
}

TEST(ShardRecord, VersionSkewRejected)
{
    const ShardParams params = testParams(0, gridTotal());
    std::vector<uint8_t> bytes =
        core::serializeShardRecord(params, expectedRows());
    bytes[4] += 1; // version field follows the magic
    EXPECT_EQ(rejectKind(bytes, params),
              ShardCacheError::Kind::BadVersion);
}

TEST(ShardRecord, WrongCampaignKeyRejected)
{
    // A record keyed for another seed must not be merged into this
    // campaign even though it is perfectly well formed.
    const ShardParams theirs =
        core::shardParams(Injections, Seed + 1, 0, 4, {});
    const std::vector<FaultCampaignRow> rows =
        core::faultCampaignRange(Injections, Seed + 1, 0, 4);
    const std::vector<uint8_t> bytes =
        core::serializeShardRecord(theirs, rows);
    EXPECT_EQ(rejectKind(bytes, testParams(0, 4)),
              ShardCacheError::Kind::KeyMismatch);
    // Same campaign, different slot range: also a key mismatch.
    EXPECT_EQ(rejectKind(core::serializeShardRecord(
                             testParams(0, 4),
                             core::faultCampaignRange(Injections, Seed,
                                                      0, 4)),
                         testParams(4, 8)),
              ShardCacheError::Kind::KeyMismatch);
}

TEST(ShardRecord, BitFlipAnywhereRejectedAsCorrupt)
{
    // Flip one bit inside a tally counter of the last row: the record
    // still parses structurally, so only the trailing checksum can
    // catch it — a wrong tally must never merge silently.
    const ShardParams params = testParams(0, gridTotal());
    std::vector<uint8_t> bytes =
        core::serializeShardRecord(params, expectedRows());
    bytes[bytes.size() - 9] ^= 0x01;
    std::string message;
    EXPECT_EQ(rejectKind(bytes, params, &message),
              ShardCacheError::Kind::Corrupt);
    EXPECT_NE(message.find("at byte"), std::string::npos) << message;
}

TEST(ShardFile, WriteLoadRoundTripAndIoErrors)
{
    TempDir dir;
    const ShardParams params = testParams(0, gridTotal());
    const std::string path =
        (dir.path() / core::shardFileName(core::shardKey(params)))
            .string();
    core::writeShardFile(
        path, core::serializeShardRecord(params, expectedRows()));
    expectRowsEqual(core::loadShardFile(path, params), expectedRows());

    // Missing file: a typed Io error whose message carries the errno
    // text, not a crash or a silent empty record.
    const std::string missing = (dir.path() / "absent.shard").string();
    try {
        (void)core::loadShardFile(missing, params);
        ADD_FAILURE() << "loading a missing shard succeeded";
    } catch (const ShardCacheError &err) {
        EXPECT_EQ(err.kind(), ShardCacheError::Kind::Io);
        EXPECT_NE(std::string(err.what()).find("No such file"),
                  std::string::npos)
            << err.what();
    }

    // An unwritable destination fails the same way.
    EXPECT_THROW(core::writeShardFile(
                     (dir.path() / "no_such_dir" / "x.shard").string(),
                     {0x00}),
                 ShardCacheError);
}

core::FleetOptions
inProcessOptions(const std::string &cache_dir, uint64_t shard_slots)
{
    core::FleetOptions opts;
    opts.injections = Injections;
    opts.seed = Seed;
    opts.jobsPerWorker = 2;
    opts.shardSlots = shard_slots;
    opts.cacheDir = cache_dir;
    return opts; // workerExe empty: in-process execution
}

TEST(Fleet, InProcessMatchesSingleCampaignAtAnyShardSize)
{
    for (const uint64_t slots : {uint64_t{1}, uint64_t{3},
                                 gridTotal(), gridTotal() * 2}) {
        const core::FleetResult result =
            core::runFleet(inProcessOptions("", slots));
        expectRowsEqual(result.rows, expectedRows());
        EXPECT_FALSE(result.stats.halted);
        EXPECT_EQ(result.stats.shards, result.stats.inProcessShards)
            << "slots " << slots;
        EXPECT_EQ(result.stats.shards,
                  (gridTotal() + slots - 1) / slots);
    }
}

TEST(Fleet, HaltedCampaignResumesWarmFromCache)
{
    TempDir dir;
    core::FleetOptions opts = inProcessOptions(dir.str(), 3);

    // "Crash" the coordinator after two shards: the result is partial
    // and flagged, and only those shards' records are on disk.
    opts.haltAfterShards = 2;
    const core::FleetResult halted = core::runFleet(opts);
    EXPECT_TRUE(halted.stats.halted);
    unsigned cached = 0;
    for (const auto &entry : fs::directory_iterator(dir.path()))
        cached += entry.path().extension() == ".shard";
    EXPECT_EQ(cached, 2u);

    // Resume: the cached shards merge warm, the rest compute, and the
    // final rows are byte-identical to the uninterrupted campaign.
    opts.haltAfterShards = 0;
    const core::FleetResult resumed = core::runFleet(opts);
    expectRowsEqual(resumed.rows, expectedRows());
    EXPECT_FALSE(resumed.stats.halted);
    EXPECT_EQ(resumed.stats.cachedShards, 2u);
    EXPECT_EQ(resumed.stats.inProcessShards,
              resumed.stats.shards - 2u);

    // A third run is served entirely from the cache.
    const core::FleetResult warm = core::runFleet(opts);
    expectRowsEqual(warm.rows, expectedRows());
    EXPECT_EQ(warm.stats.cachedShards, warm.stats.shards);
    EXPECT_EQ(warm.stats.inProcessShards, 0u);
}

TEST(Fleet, PoisonedCacheEntriesRecomputedNeverMerged)
{
    TempDir dir;
    const core::FleetOptions opts = inProcessOptions(dir.str(), 3);
    const core::FleetResult first = core::runFleet(opts);
    expectRowsEqual(first.rows, expectedRows());

    // Poison every cached record a different way: truncate one,
    // garbage another, flip a tally bit in a third.
    std::vector<fs::path> shards;
    for (const auto &entry : fs::directory_iterator(dir.path()))
        if (entry.path().extension() == ".shard")
            shards.push_back(entry.path());
    ASSERT_GE(shards.size(), 3u);
    std::sort(shards.begin(), shards.end());
    fs::resize_file(shards[0], 10);
    {
        std::FILE *f = std::fopen(shards[1].string().c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("not a shard record", f);
        std::fclose(f);
    }
    {
        std::FILE *f = std::fopen(shards[2].string().c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        std::fseek(f, -9, SEEK_END);
        const int c = std::fgetc(f);
        std::fseek(f, -9, SEEK_END);
        std::fputc(c ^ 0x01, f);
        std::fclose(f);
    }

    const core::FleetResult second = core::runFleet(opts);
    expectRowsEqual(second.rows, expectedRows());
    EXPECT_EQ(second.stats.rejectedCache, 3u);
    EXPECT_EQ(second.stats.inProcessShards, 3u);
    EXPECT_EQ(second.stats.cachedShards, second.stats.shards - 3u);
}

TEST(Avf, ReportFoldsTalliesAndRecoveryWeighting)
{
    const std::vector<core::AvfRow> report = avfReport(expectedRows());
    ASSERT_EQ(report.size(), expectedRows().size() + 1);
    EXPECT_EQ(report.back().name, "TOTAL");

    unsigned total_runs = 0;
    for (size_t i = 0; i + 1 < report.size(); ++i) {
        const core::AvfRow &row = report[i];
        EXPECT_EQ(row.name, expectedRows()[i].name);
        unsigned runs = 0;
        for (unsigned t = 0; t < core::NumFaultTargets; ++t) {
            runs += row.injections[t];
            EXPECT_LE(row.vulnerable[t], row.injections[t]);
            EXPECT_LE(row.recovered[t], row.vulnerable[t]);
            EXPECT_GE(row.avf(t), 0.0);
            EXPECT_LE(row.avf(t), 1.0);
            EXPECT_LE(row.avfRecovered(t), row.avf(t));
        }
        // Every injected run was drawn for exactly one target.
        EXPECT_EQ(runs, expectedRows()[i].injections);
        total_runs += runs;
    }
    unsigned total_report = 0;
    for (unsigned t = 0; t < core::NumFaultTargets; ++t)
        total_report += report.back().injections[t];
    EXPECT_EQ(total_report, total_runs);

    // A recovery campaign's AVF-r is genuinely recovery-weighted:
    // recovered detections leave the numerator, and the plain AVF is
    // untouched (recovery changes neither RNG nor base tallies).
    core::RecoveryOptions recovery;
    recovery.enabled = true;
    recovery.checkpointInterval = 500;
    const auto rec_report = avfReport(
        core::faultCampaign(Injections, Seed, 2, true, recovery));
    ASSERT_EQ(rec_report.size(), report.size());
    bool any_recovered = false;
    for (size_t i = 0; i < report.size(); ++i)
        for (unsigned t = 0; t < core::NumFaultTargets; ++t) {
            EXPECT_EQ(rec_report[i].injections[t],
                      report[i].injections[t]);
            EXPECT_EQ(rec_report[i].vulnerable[t],
                      report[i].vulnerable[t]);
            any_recovered |= rec_report[i].recovered[t] > 0;
        }
    (void)any_recovered; // tiny campaigns may legitimately recover 0

    const std::string table = avfTable(rec_report, true);
    EXPECT_NE(table.find("avf-r"), std::string::npos);
    EXPECT_NE(table.find("TOTAL"), std::string::npos);
}

TEST(Fleet, RangePartitionSumsToFullCampaign)
{
    // The algebra the whole fleet rests on: any partition of the grid,
    // merged in any order, equals the single-process campaign. A
    // 1-slot-per-shard fleet is the finest partition (and runs the
    // shards in cache-key order, not grid order, on resume).
    const core::FleetResult finest =
        core::runFleet(inProcessOptions("", 1));
    expectRowsEqual(finest.rows, expectedRows());
    EXPECT_EQ(finest.stats.shards, gridTotal());
}

TEST(Fleet, BackoffJitterIsDeterministicBoundedAndMonotone)
{
    const double base = 0.05;
    for (unsigned attempt = 1; attempt <= 6; ++attempt) {
        for (size_t shard = 0; shard < 8; ++shard) {
            const double d =
                core::fleetBackoffSec(base, Seed, shard, attempt);
            // Reproducible for a fixed (seed, shard, attempt) triple.
            EXPECT_EQ(d, core::fleetBackoffSec(base, Seed, shard,
                                               attempt));
            // Attempt N's jittered range is [2^(N-2), 2^(N-1)) x base.
            const double lo = std::ldexp(base, int(attempt) - 2);
            const double hi = std::ldexp(base, int(attempt) - 1);
            EXPECT_GE(d, lo) << "shard " << shard << " attempt "
                             << attempt;
            EXPECT_LT(d, hi) << "shard " << shard << " attempt "
                             << attempt;
            // Consecutive attempts of one shard never reorder.
            if (attempt > 1) {
                EXPECT_GT(d, core::fleetBackoffSec(base, Seed, shard,
                                                   attempt - 1));
            }
        }
    }
    // The point of the jitter: shards that fail together do not all
    // retry at the same instant. With 8 shards at least two distinct
    // delays is a safe (deterministic) expectation.
    std::set<double> delays;
    for (size_t shard = 0; shard < 8; ++shard)
        delays.insert(core::fleetBackoffSec(base, Seed, shard, 1));
    EXPECT_GT(delays.size(), 1u);
    // And the seed decorrelates fleets: a different campaign seed
    // yields a different jitter schedule somewhere in that range.
    bool differs = false;
    for (size_t shard = 0; shard < 8 && !differs; ++shard)
        differs = core::fleetBackoffSec(base, Seed, shard, 1) !=
                  core::fleetBackoffSec(base, Seed ^ 1, shard, 1);
    EXPECT_TRUE(differs);
}

TEST(Fleet, MultiTenantFleetsMatchSoloRuns)
{
    // Two campaigns share one (in-process) infrastructure; each
    // tenant's merged rows must be byte-identical to running it
    // alone, and per-tenant stats must not bleed into each other.
    core::FleetOptions a = inProcessOptions("", 3);
    core::FleetOptions b = a;
    b.injections = 1;
    b.seed = 13;

    const std::vector<core::FleetResult> results =
        core::runFleets({a, b});
    ASSERT_EQ(results.size(), 2u);
    expectRowsEqual(results[0].rows, expectedRows());

    const std::vector<FaultCampaignRow> want_b =
        core::faultCampaign(1, 13, 2, true);
    const ShardParams pb = core::shardParams(
        1, 13, 0, uint64_t{want_b.size()}, {});
    EXPECT_EQ(core::serializeShardRecord(pb, results[1].rows),
              core::serializeShardRecord(pb, want_b));

    EXPECT_EQ(results[0].stats.shards + results[1].stats.shards,
              results[0].stats.inProcessShards +
                  results[1].stats.inProcessShards);
    EXPECT_FALSE(results[0].stats.halted);
    EXPECT_FALSE(results[1].stats.halted);
}

} // namespace
