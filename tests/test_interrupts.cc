/**
 * @file
 * External-interrupt tests: vectoring through the window mechanism,
 * deferral rules (IE clear, transfer in flight, no vector), resumption
 * exactness, and interplay with window overflow.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "sim/cpu.hh"

namespace {

using namespace risc1;
using assembler::assembleOrDie;

/** A counting loop with an interrupt handler that bumps memory[800]. */
const char *LoopWithHandler = R"(
        .entry main
isr:    ldl   (r0)800, r16
        add   r16, 1, r16
        stl   r16, (r0)800
        retint (r25)0
main:   clr   r16
        mov   2000, r17
loop:   add   r16, 1, r16
        cmp   r16, r17
        blt   loop
        stl   r16, (r0)804
        halt
)";

sim::Cpu
makeCpu(uint32_t vector)
{
    sim::CpuOptions opts;
    opts.interruptVector = vector;
    return sim::Cpu(opts);
}

TEST(Interrupts, HandlerRunsAndExecutionResumesExactly)
{
    assembler::Program prog = assembleOrDie(LoopWithHandler);
    sim::Cpu cpu = makeCpu(*prog.symbol("isr"));
    cpu.load(prog);

    // Let the loop get going, then interrupt a few times.
    for (int i = 0; i < 50; ++i)
        cpu.step();
    for (int k = 0; k < 3; ++k) {
        cpu.raiseInterrupt();
        for (int i = 0; i < 40 && !cpu.halted(); ++i)
            cpu.step();
    }
    while (!cpu.halted())
        cpu.step();

    EXPECT_EQ(cpu.memory().peek32(800), 3u);   // handler ran 3 times
    EXPECT_EQ(cpu.memory().peek32(804), 2000u); // loop unperturbed
    EXPECT_EQ(cpu.stats().interruptsTaken, 3u);
    EXPECT_TRUE(cpu.interruptsEnabled());
}

TEST(Interrupts, IgnoredWithoutVector)
{
    assembler::Program prog = assembleOrDie(LoopWithHandler);
    sim::Cpu cpu; // no vector configured
    cpu.load(prog);
    cpu.raiseInterrupt();
    auto result = cpu.run();
    ASSERT_TRUE(result.halted());
    EXPECT_EQ(cpu.stats().interruptsTaken, 0u);
    EXPECT_EQ(cpu.memory().peek32(800), 0u);
}

TEST(Interrupts, DeferredWhileDisabled)
{
    // The handler itself runs with IE clear; a second interrupt raised
    // during the handler must wait for RETINT.
    assembler::Program prog = assembleOrDie(LoopWithHandler);
    sim::Cpu cpu = makeCpu(*prog.symbol("isr"));
    cpu.load(prog);

    for (int i = 0; i < 10; ++i)
        cpu.step();
    cpu.raiseInterrupt();
    cpu.step(); // enters the handler
    EXPECT_FALSE(cpu.interruptsEnabled());
    cpu.raiseInterrupt(); // nested request
    cpu.step();
    EXPECT_TRUE(cpu.interruptPending()); // still pending, not taken
    while (!cpu.halted())
        cpu.step();
    EXPECT_EQ(cpu.stats().interruptsTaken, 2u);
    EXPECT_EQ(cpu.memory().peek32(800), 2u);
}

TEST(Interrupts, WindowOverflowInsideEntryIsHandled)
{
    // Drive the machine to the window limit, then interrupt: the entry
    // itself must spill and everything must still unwind correctly.
    assembler::Program prog = assembleOrDie(R"(
        .entry main
isr:    ldl   (r0)800, r16
        add   r16, 1, r16
        stl   r16, (r0)800
        retint (r25)0
main:   mov   9, r10
        call  descend
        stl   r10, (r0)804
        halt
descend:
        cmp   r26, 0
        beq   bottom
        sub   r26, 1, r10
        call  descend
        mov   r10, r26
bottom: ret
)");
    sim::Cpu cpu = makeCpu(*prog.symbol("isr"));
    cpu.load(prog);

    // Step until deep in the recursion, then interrupt.
    while (cpu.stats().callDepth < 8)
        cpu.step();
    const uint64_t ovf_before = cpu.stats().windowOverflows;
    cpu.raiseInterrupt();
    auto result = cpu.run();
    ASSERT_TRUE(result.halted()) << result.message;
    EXPECT_EQ(cpu.stats().interruptsTaken, 1u);
    EXPECT_GT(cpu.stats().windowOverflows, ovf_before);
    EXPECT_EQ(cpu.memory().peek32(800), 1u);
    // The recursion's own result is untouched by the interruption.
    EXPECT_EQ(cpu.memory().peek32(804), 0u);
    EXPECT_EQ(cpu.stats().windowOverflows,
              cpu.stats().windowUnderflows);
}

} // namespace
