/**
 * @file
 * The superblock fusion engine: one record per basic block.
 *
 * Differential tests pin the engine's central claim: superblock
 * dispatch is a pure optimisation. Every scenario runs the same
 * program under the superblock engine and the plain interpreter and
 * requires byte-identical results and statistics — including the
 * hard cases: a self-modifying store into the MIDDLE of a live block,
 * a block spanning a page boundary, demotion followed by lazy
 * re-formation, and a trap raised by an interior instruction (the
 * partial-block unwind must reconstruct the exact slow-path state).
 * The campaign test pins the streaming-tally aggregation against the
 * flat outcome vector across job counts.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "core/experiments.hh"
#include "sim/cpu.hh"
#include "support/logging.hh"
#include "workloads/workload.hh"

namespace {

using namespace risc1;

void
expectStatsEq(const sim::SimStats &a, const sim::SimStats &b,
              const std::string &what)
{
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.perOpcode, b.perOpcode) << what;
    EXPECT_EQ(a.perClass, b.perClass) << what;
    EXPECT_EQ(a.branches, b.branches) << what;
    EXPECT_EQ(a.branchesTaken, b.branchesTaken) << what;
    EXPECT_EQ(a.nopsExecuted, b.nopsExecuted) << what;
    EXPECT_EQ(a.calls, b.calls) << what;
    EXPECT_EQ(a.returns, b.returns) << what;
    EXPECT_EQ(a.windowOverflows, b.windowOverflows) << what;
    EXPECT_EQ(a.windowUnderflows, b.windowUnderflows) << what;
    EXPECT_EQ(a.spillWords, b.spillWords) << what;
    EXPECT_EQ(a.refillWords, b.refillWords) << what;
    EXPECT_EQ(a.memory.instFetches, b.memory.instFetches) << what;
    EXPECT_EQ(a.memory.dataReads, b.memory.dataReads) << what;
    EXPECT_EQ(a.memory.dataWrites, b.memory.dataWrites) << what;
}

/** Superblock engine on, pair fusion off: blocks do all the work. */
sim::CpuOptions
sbOptions()
{
    sim::CpuOptions opts;
    opts.fuse = false;
    opts.superblock = true;
    return opts;
}

sim::CpuOptions
plainOptions()
{
    sim::CpuOptions opts;
    opts.threaded = false;
    return opts;
}

/** Assemble with delay-slot filling off so the written instruction
 *  order is exactly what runs. */
assembler::Program
assembleRaw(const std::string &src)
{
    assembler::AsmOptions no_fill;
    no_fill.fillDelaySlots = false;
    return assembler::assembleOrDie(src, no_fill);
}

// ---- Suite differential: superblock engine vs the plain interpreter -----

TEST(Superblock, RiscSuiteDifferential)
{
    uint64_t block_insts = 0;
    for (const workloads::Workload &wl : workloads::allWorkloads()) {
        const assembler::Program prog =
            workloads::buildRisc(wl, wl.defaultScale);

        sim::Cpu sblock(sbOptions());
        sim::Cpu plain(plainOptions());
        sblock.load(prog);
        plain.load(prog);
        const sim::ExecResult rs = sblock.run();
        const sim::ExecResult rp = plain.run();

        EXPECT_EQ(rs.reason, rp.reason) << wl.name;
        EXPECT_EQ(sblock.memory().peek32(workloads::ResultAddr),
                  plain.memory().peek32(workloads::ResultAddr))
            << wl.name;
        expectStatsEq(sblock.stats(), plain.stats(), wl.name);
        block_insts += sblock.stats().sbInstructions;
    }
    // The engine must actually engage somewhere in the suite.
    EXPECT_GT(block_insts, 0u);
}

// ---- Self-modifying store into the middle of a live block ----------------

TEST(Superblock, StoreIntoBlockMiddleMidRun)
{
    // Encoding of the replacement instruction: add r17, 100, r17.
    const assembler::Program enc =
        assembler::assembleOrDie("_start: add r17, 100, r17\n halt\n");
    const uint32_t patched = *enc.wordAt(enc.entry);

    // The loop body is a straight-line block the engine compiles into
    // one record. After ten hot iterations the store at `patch_now`
    // overwrites `mid` — the MIDDLE word of the block — with
    // `add r17, 100, r17`. The store must demote the whole block, and
    // the patched word must take effect on the very next iteration; a
    // stale block record would keep executing the embedded +1 copy.
    const std::string src = strprintf(R"(
        .equ RESULT, %u
        .org  256
_start: ldl   (r0)newword, r16
        clr   r17
        clr   r18
loop:   add   r17, 1, r17
        add   r17, 1, r17
mid:    add   r17, 1, r17
        add   r17, 1, r17
        add   r18, 1, r18
        cmp   r18, 20
        bge   done
        cmp   r18, 10
        blt   loop
        stl   r16, (r0)mid
        b     loop
done:   stl   r17, (r0)RESULT
        halt
newword: .word %u
)",
                                      workloads::ResultAddr, patched);
    const assembler::Program prog = assembleRaw(src);

    sim::Cpu sblock(sbOptions());
    sim::Cpu plain(plainOptions());
    sblock.load(prog);
    plain.load(prog);
    const sim::ExecResult rs = sblock.run();
    const sim::ExecResult rp = plain.run();

    ASSERT_TRUE(rs.halted());
    ASSERT_TRUE(rp.halted());
    // 10 iterations of +4, then 10 of +103 (the patch replaces a +1
    // with a +100): 40 + 1030.
    EXPECT_EQ(plain.memory().peek32(workloads::ResultAddr), 1070u);
    EXPECT_EQ(sblock.memory().peek32(workloads::ResultAddr), 1070u);
    expectStatsEq(sblock.stats(), plain.stats(), "mid-block store");
    EXPECT_GE(sblock.stats().sbBlocksFormed, 1u);
    EXPECT_GE(sblock.stats().sbBlocksDemoted, 1u);
}

// ---- Block spanning a page boundary --------------------------------------

TEST(Superblock, BlockSpansPageBoundary)
{
    // The loop body starts at 4080 and runs straight through the
    // 4096 page boundary: one block, slots on two DecodedCache lines,
    // embedded copies of words from both pages.
    const std::string src = strprintf(R"(
        .equ RESULT, %u
        .org  256
_start: clr   r17
        clr   r18
        b     body
store_res:
        stl   r17, (r0)RESULT
        halt
        .org  4080
body:   add   r17, 1, r17
        add   r17, 2, r17
        add   r17, 3, r17
        add   r17, 4, r17
        add   r17, 5, r17
        add   r17, 6, r17
        add   r18, 1, r18
        cmp   r18, 50
        blt   body
        b     store_res
)",
                                      workloads::ResultAddr);
    const assembler::Program prog = assembleRaw(src);

    sim::Cpu sblock(sbOptions());
    sim::Cpu plain(plainOptions());
    sblock.load(prog);
    plain.load(prog);
    const sim::ExecResult rs = sblock.run();
    const sim::ExecResult rp = plain.run();

    ASSERT_TRUE(rs.halted());
    ASSERT_TRUE(rp.halted());
    EXPECT_EQ(plain.memory().peek32(workloads::ResultAddr), 50u * 21u);
    EXPECT_EQ(sblock.memory().peek32(workloads::ResultAddr), 50u * 21u);
    expectStatsEq(sblock.stats(), plain.stats(), "page-boundary block");
    // The boundary-spanning body must actually have run block-wise.
    EXPECT_GE(sblock.stats().sbBlocksFormed, 1u);
    EXPECT_GT(sblock.stats().sbInstructions, 0u);
    EXPECT_GE(sblock.stats().sbMeanBlockLen(), 4.0);
}

// ---- Demotion, then lazy re-formation ------------------------------------

TEST(Superblock, DemotedBlockReforms)
{
    // Phase 1 (r18 in [1, 40]) runs the loop body hot: the block forms
    // and dispatches. At r18 == 40 the store rewrites `mid` (with the
    // identical word — content is irrelevant, any text store demotes).
    // Phase 2 (r18 in [41, 80]) reheats the same head: the block must
    // re-form lazily and dispatch again.
    const std::string src = strprintf(R"(
        .equ RESULT, %u
        .org  256
_start: ldl   (r0)word0, r16
        clr   r17
        clr   r18
loop:   add   r17, 1, r17
mid:    add   r17, 1, r17
        add   r17, 1, r17
        add   r17, 1, r17
        add   r18, 1, r18
        cmp   r18, 80
        bge   done
        cmp   r18, 40
        beq   patch
        b     loop
patch:  stl   r16, (r0)mid
        b     loop
done:   stl   r17, (r0)RESULT
        halt
word0:  .word 0
)",
                                      workloads::ResultAddr);
    // Make `word0` hold the exact current encoding of `mid`.
    assembler::Program prog = assembleRaw(src);
    const uint32_t mid_addr = [&] {
        // `mid` is the second loop instruction; find it by rebuilding
        // with a marker-free approach: the loop head is the target of
        // `blt loop`/`b loop`; simpler to recompute: _start is at 256
        // and `mid` is 4 instructions later (ldl, clr, clr, add).
        return prog.entry + 4 * 4;
    }();
    const uint32_t mid_word = *prog.wordAt(mid_addr);
    // Patch the image's `word0` (last word) to the live encoding.
    const std::string src2 = src;
    const size_t pos = src2.rfind(".word 0");
    ASSERT_NE(pos, std::string::npos);
    const assembler::Program prog2 = assembleRaw(
        src2.substr(0, pos) + strprintf(".word %u", mid_word));

    sim::Cpu sblock(sbOptions());
    sim::Cpu plain(plainOptions());
    sblock.load(prog2);
    plain.load(prog2);
    const sim::ExecResult rs = sblock.run();
    const sim::ExecResult rp = plain.run();

    ASSERT_TRUE(rs.halted());
    ASSERT_TRUE(rp.halted());
    EXPECT_EQ(plain.memory().peek32(workloads::ResultAddr), 80u * 4u);
    EXPECT_EQ(sblock.memory().peek32(workloads::ResultAddr), 80u * 4u);
    expectStatsEq(sblock.stats(), plain.stats(), "demote + re-form");
    // Formed in phase 1, demoted by the store, re-formed in phase 2.
    EXPECT_GE(sblock.stats().sbBlocksFormed, 2u);
    EXPECT_GE(sblock.stats().sbBlocksDemoted, 1u);
    EXPECT_GT(sblock.stats().sbDispatches, 0u);
}

// ---- Trap raised by an interior instruction ------------------------------

TEST(Superblock, InteriorTrapMatchesSlowPath)
{
    // The load sits in the middle of a hot block; r16 doubles every
    // iteration until the load crosses memLimit and faults. The
    // partial-block unwind must leave exactly the slow path's state:
    // same fault cause/address/PC, same instruction and cycle counts,
    // same per-opcode tallies (the instructions before the load in the
    // faulting pass DID retire; the ones after did NOT).
    const std::string src = R"(
        .org  256
_start: add   r0, 256, r16
        clr   r17
body:   add   r17, 1, r17
        add   r16, r16, r16
        ldl   (r16)0, r19
        add   r17, 2, r17
        cmp   r17, 4000
        blt   body
        halt
)";
    const assembler::Program prog = assembleRaw(src);

    sim::CpuOptions sb_opts = sbOptions();
    sim::CpuOptions plain_opts = plainOptions();
    sb_opts.memLimit = 0x01000000; // 16 MB: the load faults eventually
    plain_opts.memLimit = 0x01000000;

    sim::Cpu sblock(sb_opts);
    sim::Cpu plain(plain_opts);
    sblock.load(prog);
    plain.load(prog);
    const sim::ExecResult rs = sblock.run();
    const sim::ExecResult rp = plain.run();

    ASSERT_EQ(rp.reason, sim::StopReason::Fault);
    ASSERT_EQ(rs.reason, sim::StopReason::Fault);
    EXPECT_EQ(rs.faultCause, rp.faultCause);
    EXPECT_EQ(rs.faultAddr, rp.faultAddr);
    EXPECT_EQ(rs.faultPc, rp.faultPc);
    EXPECT_EQ(rs.instructions, rp.instructions);
    EXPECT_EQ(rs.cycles, rp.cycles);
    EXPECT_EQ(sblock.pc(), plain.pc());
    expectStatsEq(sblock.stats(), plain.stats(), "interior trap");
    // The faulting load really was an interior block instruction.
    EXPECT_GT(sblock.stats().sbDispatches, 0u);
}

// ---- Campaign: streaming tallies vs flat vector, across job counts -------

TEST(Superblock, CampaignStreamingMatchesFlatAcrossJobs)
{
    // Streaming aggregation (fixed-size tallies, chunked consume) must
    // reproduce the flat outcome vector bit for bit, at any job count.
    const auto flat_serial = core::faultCampaign(3, 2026, 1, false);
    const auto stream_parallel = core::faultCampaign(3, 2026, 4, true);
    const auto stream_serial = core::faultCampaign(3, 2026, 1, true);
    EXPECT_EQ(core::faultCampaignTable(flat_serial),
              core::faultCampaignTable(stream_parallel));
    EXPECT_EQ(core::faultCampaignTable(flat_serial),
              core::faultCampaignTable(stream_serial));
}

// ---- Mid-run restore must demote live blocks -----------------------------

TEST(Superblock, RestoreMidRunDemotesLiveBlocks)
{
    // Warm the superblock engine deep into a recursive workload, then
    // restore a snapshot taken much earlier in the SAME machine. Every
    // live block record bakes physical register operands for the
    // window state it was formed under; a record surviving restore()
    // would execute against the rolled-back CWP and corrupt the run.
    const workloads::Workload *pick = nullptr;
    for (const workloads::Workload &wl : workloads::allWorkloads())
        if (wl.recursive)
            pick = &wl;
    ASSERT_NE(pick, nullptr);
    const assembler::Program prog =
        workloads::buildRisc(*pick, pick->defaultScale);

    sim::Cpu plain(plainOptions());
    plain.load(prog);
    const sim::ExecResult rp = plain.run();
    ASSERT_TRUE(rp.halted());

    sim::Cpu sblock(sbOptions());
    sblock.load(prog);
    const uint64_t early = rp.instructions / 5 + 3;
    const uint64_t late = (3 * rp.instructions) / 4 + 1;
    ASSERT_EQ(sblock.runUntil(early).reason, sim::StopReason::Paused);
    const sim::Snapshot snap = sblock.snapshot();
    ASSERT_EQ(sblock.runUntil(late).reason, sim::StopReason::Paused);
    ASSERT_GT(sblock.stats().sbInstructions, 0u);

    sblock.restore(snap);
    const sim::ExecResult rs = sblock.run();
    ASSERT_TRUE(rs.halted());
    EXPECT_EQ(sblock.memory().peek32(workloads::ResultAddr),
              plain.memory().peek32(workloads::ResultAddr));
    expectStatsEq(sblock.stats(), plain.stats(), "restored superblock");
}

} // namespace
