/**
 * @file
 * End-to-end smoke tests: assemble small programs and run them on the
 * Cpu, checking registers, memory, windows and halting behaviour.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "sim/cpu.hh"

namespace {

using namespace risc1;

sim::ExecResult
runSource(sim::Cpu &cpu, const char *src)
{
    assembler::Program prog = assembler::assembleOrDie(src);
    cpu.load(prog);
    return cpu.run();
}

TEST(Smoke, AddImmediateAndHalt)
{
    sim::Cpu cpu;
    auto result = runSource(cpu, R"(
_start: add  r0, 5, r16
        add  r16, 7, r17
        halt
)");
    EXPECT_TRUE(result.halted()) << result.message;
    EXPECT_EQ(cpu.reg(16), 5u);
    EXPECT_EQ(cpu.reg(17), 12u);
}

TEST(Smoke, LoadStoreRoundTrip)
{
    sim::Cpu cpu;
    auto result = runSource(cpu, R"(
        .equ BUF, 0x2000
_start: mov  1234567, r16
        mov  BUF, r17
        stl  r16, (r17)0
        ldl  (r17)0, r18
        halt
)");
    ASSERT_TRUE(result.halted()) << result.message;
    EXPECT_EQ(cpu.reg(18), 1234567u);
    EXPECT_EQ(cpu.memory().peek32(0x2000), 1234567u);
}

TEST(Smoke, LoopSumsOneToTen)
{
    sim::Cpu cpu;
    auto result = runSource(cpu, R"(
_start: clr  r16          ; sum
        mov  10, r17      ; i
loop:   add  r16, r17, r16
        subs r17, 1, r17
        bne  loop
        halt
)");
    ASSERT_TRUE(result.halted()) << result.message;
    EXPECT_EQ(cpu.reg(16), 55u);
}

TEST(Smoke, CallReturnPassesArgsThroughWindowOverlap)
{
    sim::Cpu cpu;
    // Caller puts an argument in out0 (r10); callee sees it in in0
    // (r26), doubles it into in1 (r27); caller reads it back in out1
    // (r11).
    auto result = runSource(cpu, R"(
_start: mov   21, r10
        call  double
        mov   r11, r16
        halt
double: add   r26, r26, r27
        ret
)");
    ASSERT_TRUE(result.halted()) << result.message;
    EXPECT_EQ(cpu.reg(16), 42u);
    EXPECT_EQ(cpu.stats().calls, 1u);
    EXPECT_EQ(cpu.stats().returns, 1u);
}

TEST(Smoke, RecursionTriggersWindowTraps)
{
    sim::Cpu cpu; // 8 windows: depth 16 must overflow and refill
    auto result = runSource(cpu, R"(
; in0 = depth counter
_start: mov   16, r10
        call  recur
        halt
recur:  cmp   r26, 0
        beq   done
        sub   r26, 1, r10
        call  recur
done:   ret
)");
    ASSERT_TRUE(result.halted()) << result.message;
    EXPECT_EQ(cpu.stats().calls, 17u);
    EXPECT_EQ(cpu.stats().returns, 17u);
    EXPECT_GT(cpu.stats().windowOverflows, 0u);
    EXPECT_EQ(cpu.stats().windowOverflows, cpu.stats().windowUnderflows);
    EXPECT_EQ(cpu.stats().maxCallDepth, 17u);
}

TEST(Smoke, FaultOnIllegalOpcode)
{
    sim::Cpu cpu;
    auto result = runSource(cpu, R"(
_start: .word 0xffffffff
)");
    EXPECT_EQ(result.reason, sim::StopReason::Fault);
    EXPECT_NE(result.message.find("illegal opcode"), std::string::npos);
}

} // namespace
