/**
 * @file
 * Windowed register-file tests: zero register, window isolation, the
 * LOW/HIGH overlap, and the spill-unit mapping (frameSlotPhys) that
 * the window traps depend on.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/regfile.hh"

namespace {

using namespace risc1;
using sim::RegisterFile;

isa::WindowSpec
spec(unsigned nwin)
{
    isa::WindowSpec s;
    s.numWindows = nwin;
    return s;
}

TEST(RegFile, ZeroRegisterIsImmutable)
{
    RegisterFile regs(spec(8));
    regs.write(0, isa::ZeroReg, 0xffffffff);
    EXPECT_EQ(regs.read(0, isa::ZeroReg), 0u);
}

TEST(RegFile, GlobalsSharedAcrossWindows)
{
    RegisterFile regs(spec(8));
    regs.write(0, 5, 777);
    for (unsigned w = 0; w < 8; ++w)
        EXPECT_EQ(regs.read(w, 5), 777u);
}

TEST(RegFile, LocalsIsolatedBetweenWindows)
{
    RegisterFile regs(spec(8));
    regs.write(3, 20, 111);
    regs.write(4, 20, 222);
    EXPECT_EQ(regs.read(3, 20), 111u);
    EXPECT_EQ(regs.read(4, 20), 222u);
}

TEST(RegFile, OverlapCarriesParameters)
{
    RegisterFile regs(spec(8));
    // Caller in window 3 writes out2 (r12); callee (window 2 after the
    // CALL decrement) reads in2 (r28).
    regs.write(3, 12, 42);
    EXPECT_EQ(regs.read(2, 28), 42u);
    // And the callee's reply flows back.
    regs.write(2, 26, 99);
    EXPECT_EQ(regs.read(3, 10), 99u);
}

class FrameSlots : public ::testing::TestWithParam<unsigned>
{};

TEST_P(FrameSlots, SpillUnitAvoidsResidentSharing)
{
    const unsigned nwin = GetParam();
    RegisterFile regs(spec(nwin));

    for (unsigned w = 0; w < nwin; ++w) {
        // The 16 spill slots are distinct physical registers...
        std::set<unsigned> slots;
        for (unsigned s = 0; s < isa::RegsPerWindow; ++s)
            EXPECT_TRUE(slots.insert(regs.frameSlotPhys(w, s)).second);

        // ...covering exactly LOCAL(w) and HIGH(w).
        for (unsigned r = isa::LocalBase; r < isa::HighBase; ++r)
            EXPECT_TRUE(slots.count(regs.spec().physIndex(w, r)))
                << "w=" << w << " r=" << r;
        for (unsigned r = isa::HighBase; r < isa::NumVisibleRegs; ++r)
            EXPECT_TRUE(slots.count(regs.spec().physIndex(w, r)))
                << "w=" << w << " r=" << r;

        // ...and never touching the LOW registers shared with the
        // window's resident callee (window w-1's HIGH).
        for (unsigned r = isa::LowBase; r < isa::LocalBase; ++r)
            EXPECT_FALSE(slots.count(regs.spec().physIndex(w, r)))
                << "w=" << w << " r=" << r;
    }
}

INSTANTIATE_TEST_SUITE_P(Counts, FrameSlots,
                         ::testing::Values(2u, 4u, 8u, 16u));

TEST(RegFile, ClearZeroesEverything)
{
    RegisterFile regs(spec(4));
    regs.write(1, 17, 5);
    regs.write(0, 9, 6);
    regs.clear();
    EXPECT_EQ(regs.read(1, 17), 0u);
    EXPECT_EQ(regs.read(0, 9), 0u);
}

} // namespace
