/**
 * @file
 * tinyc compiler tests: the same source compiled to BOTH machines must
 * produce the host-evaluated answer — arithmetic, control flow,
 * recursion (windows vs CALLS), mem[], and a randomized differential
 * expression torture. Plus front-end diagnostics.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "cc/compiler.hh"
#include "sim/cpu.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "vax/cpu.hh"

namespace {

using namespace risc1;
using cc::CcResultAddr;

/** Compile + run on RISC I; returns main()'s result. */
uint32_t
runRisc(const std::string &src)
{
    cc::RiscCompileResult compiled = cc::compileToRiscAsm(src);
    EXPECT_TRUE(compiled.ok) << compiled.error;
    if (!compiled.ok)
        return 0xdeadbeef;
    assembler::AsmResult assembled =
        assembler::assemble(compiled.assembly);
    EXPECT_TRUE(assembled.ok())
        << assembled.errorText() << "\n" << compiled.assembly;
    sim::Cpu cpu;
    cpu.load(assembled.program);
    auto result = cpu.run();
    EXPECT_TRUE(result.halted()) << result.message;
    return cpu.memory().peek32(CcResultAddr);
}

/** Compile + run on vax80. */
uint32_t
runVax(const std::string &src)
{
    cc::VaxCompileResult compiled = cc::compileToVax(src);
    EXPECT_TRUE(compiled.ok) << compiled.error;
    if (!compiled.ok)
        return 0xdeadbeef;
    vax::VaxCpu cpu;
    cpu.load(compiled.program);
    auto result = cpu.run();
    EXPECT_TRUE(result.halted()) << result.message;
    return cpu.memory().peek32(CcResultAddr);
}

/** Both machines must agree with `expected`. */
void
both(const std::string &src, uint32_t expected)
{
    EXPECT_EQ(runRisc(src), expected) << "RISC I\n" << src;
    EXPECT_EQ(runVax(src), expected) << "vax80\n" << src;
}

TEST(Cc, ArithmeticAndPrecedence)
{
    both("main() { return 2 + 3 * 4; }", 14);
    both("main() { return (2 + 3) * 4; }", 20);
    both("main() { return 100 - 7 * 9; }", 37);
    both("main() { return 100 / 7; }", 14);
    both("main() { return 100 % 7; }", 2);
    both("main() { return 1 << 10; }", 1024);
    both("main() { return 0x80000000 >> 31; }", 1); // logical shift
    both("main() { return 255 & 0x0f0f; }", 0x0f);
    both("main() { return 0xf0 | 0x0f; }", 0xff);
    both("main() { return 0xff ^ 0x0f; }", 0xf0);
    both("main() { return -1; }", 0xffffffffu);
    both("main() { return ~0; }", 0xffffffffu);
    both("main() { return !5; }", 0);
    both("main() { return !0; }", 1);
}

TEST(Cc, UnsignedComparisonSemantics)
{
    both("main() { return 3 < 5; }", 1);
    both("main() { return 5 <= 5; }", 1);
    both("main() { return 5 > 5; }", 0);
    both("main() { return 6 >= 5; }", 1);
    both("main() { return 5 == 5; }", 1);
    both("main() { return 5 != 5; }", 0);
    // Unsigned: 0xffffffff is the largest value, not -1.
    both("main() { return 0 - 1 > 1000; }", 1);
    both("main() { return 1 < 0 - 1; }", 1);
}

TEST(Cc, LogicalOperators)
{
    both("main() { return 3 && 4; }", 1);
    both("main() { return 3 && 0; }", 0);
    both("main() { return 0 || 7; }", 1);
    both("main() { return 0 || 0; }", 0);
}

TEST(Cc, VariablesAndControlFlow)
{
    both(R"(
main() {
    var sum = 0;
    var i = 1;
    while (i <= 100) {
        sum = sum + i;
        i = i + 1;
    }
    return sum;
}
)",
         5050);

    both(R"(
classify(x) {
    if (x < 10) { return 1; }
    else {
        if (x < 100) { return 2; } else { return 3; }
    }
}
main() { return classify(5) * 100 + classify(50) * 10 + classify(500); }
)",
         123);
}

TEST(Cc, FunctionsAndRecursion)
{
    both(R"(
fib(n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
main() { return fib(15); }
)",
         610);

    both(R"(
gcd(a, b) {
    if (b == 0) { return a; }
    return gcd(b, a % b);
}
main() { return gcd(1071, 462) + gcd(123456, 7890); }
)",
         21 + 6);

    both(R"(
ack(m, n) {
    if (m == 0) { return n + 1; }
    if (n == 0) { return ack(m - 1, 1); }
    return ack(m - 1, ack(m, n - 1));
}
main() { return ack(2, 3); }
)",
         9);
}

TEST(Cc, MemArrayProgramsSieve)
{
    // Sieve of Eratosthenes in tinyc, both machines.
    const char *src = R"(
main() {
    var n = 500;
    var i = 2;
    var count = 0;
    while (i < n) {
        if (mem[i] == 0) {
            count = count + 1;
            var j = i + i;
            while (j < n) {
                mem[j] = 1;
                j = j + i;
            }
        }
        i = i + 1;
    }
    return count;
}
)";
    both(src, 95); // pi(500) = 95
}

TEST(Cc, SixParametersAndImplicitReturn)
{
    both(R"(
sum6(a, b, c, d, e, f) { return a + b + c + d + e + f; }
noret() { var x = 5; x = x + 1; }
main() { return sum6(1, 2, 3, 4, 5, 6) + noret(); }
)",
         21);
}

TEST(Cc, Diagnostics)
{
    auto risc_err = [](const char *src) {
        cc::RiscCompileResult r = cc::compileToRiscAsm(src);
        EXPECT_FALSE(r.ok) << src;
        return r.error;
    };
    EXPECT_NE(risc_err("main() { return x; }").find("unknown variable"),
              std::string::npos);
    EXPECT_NE(risc_err("main() { return f(1); }")
                  .find("unknown function"),
              std::string::npos);
    EXPECT_NE(risc_err("f(a) { return a; } main() { return f(); }")
                  .find("argument"),
              std::string::npos);
    EXPECT_NE(risc_err("main() { var a; var a; }").find("duplicate"),
              std::string::npos);
    EXPECT_NE(risc_err("main() { return 1 +; }").find("expected"),
              std::string::npos);
    EXPECT_NE(risc_err("f() {} ").find("main"), std::string::npos);
    EXPECT_NE(
        risc_err("f(a,b,c,d,e,f,g) { return 0; } main() { return 0; }")
            .find("parameters"),
        std::string::npos);

    // The vax back end diagnoses the same front-end errors.
    cc::VaxCompileResult v = cc::compileToVax("main() { return x; }");
    EXPECT_FALSE(v.ok);
}

// ---- randomized differential expressions ----------------------------------

/** Host-side evaluator mirroring tinyc semantics. */
uint32_t
hostEval(const std::string &op, uint32_t a, uint32_t b)
{
    if (op == "+")
        return a + b;
    if (op == "-")
        return a - b;
    if (op == "*")
        return a * b;
    if (op == "/")
        return b ? a / b : 0;
    if (op == "%")
        return b ? a % b : 0;
    if (op == "&")
        return a & b;
    if (op == "|")
        return a | b;
    if (op == "^")
        return a ^ b;
    if (op == "<<")
        return a << (b & 31);
    if (op == ">>")
        return a >> (b & 31);
    if (op == "==")
        return a == b;
    if (op == "!=")
        return a != b;
    if (op == "<")
        return a < b;
    if (op == "<=")
        return a <= b;
    if (op == ">")
        return a > b;
    if (op == ">=")
        return a >= b;
    if (op == "&&")
        return a && b;
    if (op == "||")
        return a || b;
    ADD_FAILURE() << "bad op " << op;
    return 0;
}

/** Random expression tree rendered as fully parenthesized source. */
struct GenExpr
{
    std::string text;
    uint32_t value;
};

GenExpr
randomExpr(Rng &rng, unsigned depth)
{
    if (depth == 0 || rng.chance(1, 4)) {
        const auto v = static_cast<uint32_t>(
            rng.chance(1, 2) ? rng.below(1000) : rng.next());
        return GenExpr{strprintf("%u", v), v};
    }
    static const char *ops[] = {"+",  "-",  "*",  "/",  "%",  "&",
                                "|",  "^",  "<<", ">>", "==", "!=",
                                "<",  "<=", ">",  ">=", "&&", "||"};
    const std::string op = ops[rng.below(std::size(ops))];
    GenExpr lhs = randomExpr(rng, depth - 1);
    GenExpr rhs = randomExpr(rng, depth - 1);
    if (op == "/" || op == "%") {
        // Force a nonzero divisor: (rhs | 1).
        rhs.text = "(" + rhs.text + " | 1)";
        rhs.value |= 1;
    }
    GenExpr out;
    out.text = "(" + lhs.text + " " + op + " " + rhs.text + ")";
    out.value = hostEval(op, lhs.value, rhs.value);
    return out;
}

class CcDifferential : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(CcDifferential, RandomExpressionsMatchHostOnBothMachines)
{
    Rng rng(GetParam() * 7919 + 123);
    for (int i = 0; i < 12; ++i) {
        const GenExpr e = randomExpr(rng, 3);
        const std::string src =
            "main() { return " + e.text + "; }";
        EXPECT_EQ(runRisc(src), e.value) << src;
        EXPECT_EQ(runVax(src), e.value) << src;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CcDifferential,
                         ::testing::Values(uint64_t{1}, uint64_t{2},
                                           uint64_t{3}, uint64_t{4}));

TEST(Cc, CompiledRecursionRidesTheWindowMechanism)
{
    // fib(18) reaches call depth 18 on an 8-window file: the compiled
    // code must overflow, refill, and still be exact.
    const char *src = R"(
fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
main() { return fib(18); }
)";
    cc::RiscCompileResult compiled = cc::compileToRiscAsm(src);
    ASSERT_TRUE(compiled.ok) << compiled.error;
    sim::Cpu cpu;
    cpu.load(assembler::assembleOrDie(compiled.assembly));
    auto result = cpu.run();
    ASSERT_TRUE(result.halted()) << result.message;
    EXPECT_EQ(cpu.memory().peek32(CcResultAddr), 2584u);
    EXPECT_GT(cpu.stats().windowOverflows, 0u);
    EXPECT_EQ(cpu.stats().windowOverflows,
              cpu.stats().windowUnderflows);
}

TEST(Cc, CompiledCodeSurvivesOptimizerToggle)
{
    const char *src = R"(
f(a, b) { return (a + b) * (a - b) + a % (b | 1); }
main() {
    var acc = 0;
    var i = 1;
    while (i < 40) { acc = acc ^ f(acc + i, i * 3); i = i + 1; }
    return acc;
}
)";
    cc::RiscCompileResult compiled = cc::compileToRiscAsm(src);
    ASSERT_TRUE(compiled.ok) << compiled.error;
    uint32_t results[2];
    for (int pass = 0; pass < 2; ++pass) {
        assembler::AsmOptions opts;
        opts.fillDelaySlots = pass == 0;
        sim::Cpu cpu;
        cpu.load(assembler::assembleOrDie(compiled.assembly, opts));
        ASSERT_TRUE(cpu.run().halted());
        results[pass] = cpu.memory().peek32(CcResultAddr);
    }
    EXPECT_EQ(results[0], results[1]);
    EXPECT_EQ(results[0], runVax(src)); // and vax80 agrees
}

TEST(Cc, MemWordsOptionSizesTheArray)
{
    cc::CcOptions options;
    options.memWords = 8;
    cc::RiscCompileResult compiled = cc::compileToRiscAsm(
        "main() { mem[7] = 42; return mem[7]; }", options);
    ASSERT_TRUE(compiled.ok);
    EXPECT_NE(compiled.assembly.find(".space 32"), std::string::npos);
}

} // namespace
