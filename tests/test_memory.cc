/**
 * @file
 * Memory system tests: little-endian multi-byte access, alignment
 * enforcement, sparse zero-fill, program loading and traffic counters.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "sim/fault.hh"
#include "sim/memory.hh"

namespace {

using namespace risc1;
using sim::Memory;
using sim::SimFault;

TEST(Memory, UnmappedReadsAsZero)
{
    Memory mem;
    EXPECT_EQ(mem.read32(0x12345678 & ~3u), 0u);
    EXPECT_EQ(mem.read8(0xffffffff), 0u);
    EXPECT_EQ(mem.peek32(0x8000), 0u);
}

TEST(Memory, LittleEndianRoundTrips)
{
    Memory mem;
    mem.write32(0x100, 0xdeadbeef);
    EXPECT_EQ(mem.read8(0x100), 0xefu);
    EXPECT_EQ(mem.read8(0x101), 0xbeu);
    EXPECT_EQ(mem.read16(0x100), 0xbeefu);
    EXPECT_EQ(mem.read16(0x102), 0xdeadu);
    EXPECT_EQ(mem.read32(0x100), 0xdeadbeefu);

    mem.write16(0x200, 0x1234);
    EXPECT_EQ(mem.read8(0x200), 0x34u);
    mem.write8(0x201, 0xff);
    EXPECT_EQ(mem.read16(0x200), 0xff34u);
}

TEST(Memory, CrossesPageBoundaries)
{
    Memory mem;
    const uint32_t addr = Memory::PageSize - 2;
    mem.write16(addr, 0xabcd);
    mem.write16(addr + 2, 0x1122);
    EXPECT_EQ(mem.read32(addr & ~3u) != 0, true);
    EXPECT_EQ(mem.read16(addr), 0xabcdu);
    EXPECT_EQ(mem.read16(addr + 2), 0x1122u);
}

TEST(Memory, AlignmentFaults)
{
    Memory mem;
    EXPECT_THROW(mem.read32(0x101), SimFault);
    EXPECT_THROW(mem.read16(0x101), SimFault);
    EXPECT_THROW(mem.write32(0x102, 1), SimFault);
    EXPECT_THROW(mem.write16(0x103, 1), SimFault);
    EXPECT_THROW(mem.fetch32(0x1002), SimFault);
    EXPECT_NO_THROW(mem.read8(0x103));
}

TEST(Memory, TrafficCounters)
{
    Memory mem;
    mem.write32(0x10, 1); // 1 write, 4 bytes
    mem.write8(0x20, 2);  // 1 write, 1 byte
    mem.read16(0x10);     // 1 read, 2 bytes
    mem.fetch32(0x100);   // 1 fetch
    mem.peek32(0x10);     // not counted
    mem.poke8(0x30, 3);   // not counted

    const sim::MemStats &stats = mem.stats();
    EXPECT_EQ(stats.dataWrites, 2u);
    EXPECT_EQ(stats.dataWriteBytes, 5u);
    EXPECT_EQ(stats.dataReads, 1u);
    EXPECT_EQ(stats.dataReadBytes, 2u);
    EXPECT_EQ(stats.instFetches, 1u);
    EXPECT_EQ(stats.totalAccesses(), 4u);

    mem.countInstFetches(3);
    EXPECT_EQ(mem.stats().instFetches, 4u);

    mem.resetStats();
    EXPECT_EQ(mem.stats().totalAccesses(), 0u);
}

TEST(Memory, LoadsProgramSegments)
{
    assembler::Program prog = assembler::assembleOrDie(R"(
        .org 0x1000
_start: nop
        .org 0x3000
data:   .word 0xcafef00d
)");
    Memory mem;
    mem.loadProgram(prog);
    EXPECT_EQ(mem.peek32(0x3000), 0xcafef00du);
    EXPECT_NE(mem.peek32(0x1000), 0u);
    EXPECT_EQ(mem.stats().totalAccesses(), 0u); // loader is uncounted
}

} // namespace
