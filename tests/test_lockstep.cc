/**
 * @file
 * Lockstep divergence sentinel tests: every fast engine runs in
 * lockstep against the reference interpreter with zero divergences —
 * on real workloads and on seeded random programs — and an engine
 * with an intentionally injected defect (the perturbation test hook)
 * is caught with the first divergent instruction pinned exactly.
 * Under -DRISC1_SANITIZE=ON the fuzz cases double as the ASan+UBSan
 * smoke over the lockstep/snapshot machinery.
 */

#include <gtest/gtest.h>

#include "sim/cpu.hh"
#include "sim/lockstep.hh"
#include "sim/snapshot.hh"
#include "support/logging.hh"
#include "workloads/workload.hh"

namespace {

using namespace risc1;

/** The reference: the plain (non-predecoded) interpreter. */
sim::CpuOptions
interpOptions()
{
    sim::CpuOptions opts;
    opts.predecode = false;
    opts.threaded = false;
    opts.fuse = false;
    opts.superblock = false;
    return opts;
}

/** The engine ladder above the interpreter, by name. */
std::vector<std::pair<std::string, sim::CpuOptions>>
fastEngines()
{
    sim::CpuOptions predecode;
    predecode.predecode = true;
    predecode.threaded = false;
    predecode.fuse = false;
    predecode.superblock = false;

    sim::CpuOptions threaded;
    threaded.threaded = true;
    threaded.fuse = true;
    threaded.superblock = false;

    sim::CpuOptions superblock;
    superblock.threaded = true;
    superblock.fuse = false;
    superblock.superblock = true;

    return {{"predecode", predecode},
            {"threaded", threaded},
            {"superblock", superblock}};
}

TEST(Lockstep, WorkloadsRunDivergenceFree)
{
    // A recursive and an iterative workload through every engine pair;
    // an odd stride so boundaries land mid-block and mid-fused-pair.
    unsigned tested = 0;
    for (const workloads::Workload &wl : workloads::allWorkloads()) {
        if (wl.name != "fibonacci" && wl.name != "queens")
            continue;
        const assembler::Program prog =
            workloads::buildRisc(wl, wl.defaultScale);
        for (const auto &[name, engine] : fastEngines()) {
            sim::LockstepOptions opts;
            opts.stride = 777;
            const sim::LockstepResult res =
                sim::runLockstep(prog, interpOptions(), engine, opts);
            EXPECT_FALSE(res.diverged)
                << wl.name << " vs " << name << "\n" << res.report.str();
            EXPECT_EQ(res.reason, sim::StopReason::Halted)
                << wl.name << " vs " << name;
            ++tested;
        }
    }
    EXPECT_EQ(tested, 6u);
}

TEST(Lockstep, FuzzedProgramsRunDivergenceFree)
{
    // Fixed seeds, bounded runs (random programs may loop forever):
    // all engine pairs must agree at every stride for every program.
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        const assembler::Program prog = sim::randomProgram(seed);
        for (const auto &[name, engine] : fastEngines()) {
            sim::LockstepOptions opts;
            opts.stride = 257;
            opts.maxInstructions = 60'000;
            const sim::LockstepResult res =
                sim::runLockstep(prog, interpOptions(), engine, opts);
            EXPECT_FALSE(res.diverged)
                << "seed " << seed << " vs " << name << "\n"
                << res.report.str();
            EXPECT_TRUE(res.reason == sim::StopReason::Halted ||
                        res.reason == sim::StopReason::Paused)
                << "seed " << seed << " vs " << name << ": reason "
                << static_cast<unsigned>(res.reason);
        }
    }
}

TEST(Lockstep, RandomProgramIsDeterministicPerSeed)
{
    const assembler::Program a = sim::randomProgram(7);
    const assembler::Program b = sim::randomProgram(7);
    ASSERT_EQ(a.segments.size(), b.segments.size());
    for (size_t i = 0; i < a.segments.size(); ++i) {
        EXPECT_EQ(a.segments[i].base, b.segments[i].base);
        EXPECT_EQ(a.segments[i].bytes, b.segments[i].bytes);
    }
    const assembler::Program c = sim::randomProgram(8);
    bool differs = a.segments.size() != c.segments.size();
    for (size_t i = 0; !differs && i < a.segments.size(); ++i)
        differs = a.segments[i].bytes != c.segments[i].bytes;
    EXPECT_TRUE(differs) << "different seeds produced identical programs";
}

/** A fuzz program that retires at least `floor` instructions. */
assembler::Program
longRandomProgram(uint64_t *seed_out, uint64_t floor, uint64_t bound)
{
    for (uint64_t seed = 1; seed <= 200; ++seed) {
        const assembler::Program prog = sim::randomProgram(seed);
        sim::Cpu probe(interpOptions());
        probe.load(prog);
        if (probe.runUntil(bound).instructions >= floor) {
            *seed_out = seed;
            return prog;
        }
    }
    ADD_FAILURE() << "no long-running fuzz program found";
    return {};
}

TEST(Lockstep, PerturbedEngineCaughtAtExactInstruction)
{
    // Inject a deterministic "engine bug" via the perturbation hook:
    // the subject's r8 (a global the fuzz programs never touch) is
    // flipped once it has retired exactly `perturbAt` instructions.
    // The sentinel must pin that exact instruction index and PC.
    uint64_t seed = 0;
    const assembler::Program prog =
        longRandomProgram(&seed, 5'000, 60'000);

    constexpr uint64_t PerturbAt = 1'000;
    sim::LockstepOptions opts;
    opts.stride = 256;
    opts.maxInstructions = 60'000;
    opts.perturbAt = PerturbAt;
    opts.perturbReg = 8;
    opts.perturbMask = 0x80000000u;

    // Independent expectation: the PC the reference machine sits at
    // after retiring exactly PerturbAt instructions.
    sim::Cpu expect(interpOptions());
    expect.load(prog);
    ASSERT_EQ(expect.runUntil(PerturbAt).reason,
              sim::StopReason::Paused);
    const uint32_t expect_pc = expect.pc();

    for (const auto &[name, engine] : fastEngines()) {
        const sim::LockstepResult res =
            sim::runLockstep(prog, interpOptions(), engine, opts);
        ASSERT_TRUE(res.diverged) << "seed " << seed << " vs " << name;
        EXPECT_EQ(res.report.instructionIndex, PerturbAt)
            << name << "\n" << res.report.str();
        EXPECT_EQ(res.report.pc, expect_pc)
            << name << "\n" << res.report.str();
        // The report names the perturbed register, carries a disasm
        // window around the pinned PC, and its checkpoint precedes
        // the divergence by less than one stride.
        EXPECT_NE(res.report.fieldDiff.find("phys r"), std::string::npos);
        EXPECT_NE(res.report.disasm.find("=>"), std::string::npos);
        EXPECT_LT(res.report.reproducerInstructions, PerturbAt);
        EXPECT_GE(res.report.reproducerInstructions + opts.stride,
                  PerturbAt);
        EXPECT_FALSE(res.report.str().empty());

        // The reproducer snapshot replays: deserialize, restore into
        // a fresh reference machine, advance to the pinned index, and
        // land on the pinned PC.
        const sim::Snapshot snap = sim::deserializeSnapshot(
            res.report.reproducer, interpOptions());
        sim::Cpu replay(interpOptions());
        replay.load(prog);
        replay.restore(snap);
        EXPECT_EQ(replay.stats().instructions,
                  res.report.reproducerInstructions);
        ASSERT_EQ(replay.runUntil(PerturbAt).reason,
                  sim::StopReason::Paused);
        EXPECT_EQ(replay.pc(), res.report.pc) << name;
    }
}

TEST(Lockstep, PerturbationOnTheReferenceSideAlsoCaught)
{
    // Symmetry check with a workload program: perturbing the *subject*
    // when it is the superblock engine still pins the same index.
    const workloads::Workload *fib = nullptr;
    for (const workloads::Workload &wl : workloads::allWorkloads())
        if (wl.name == "fibonacci")
            fib = &wl;
    ASSERT_NE(fib, nullptr);
    const assembler::Program prog =
        workloads::buildRisc(*fib, fib->defaultScale);

    sim::LockstepOptions opts;
    opts.stride = 1000;
    opts.perturbAt = 4'321;
    opts.perturbReg = 9;
    opts.perturbMask = 0x1;
    const sim::LockstepResult res = sim::runLockstep(
        prog, interpOptions(), fastEngines()[2].second, opts);
    ASSERT_TRUE(res.diverged);
    EXPECT_EQ(res.report.instructionIndex, opts.perturbAt);
}

TEST(Lockstep, ArchitecturallyIncompatibleConfigsRefused)
{
    const assembler::Program prog = sim::randomProgram(3);
    sim::CpuOptions ref = interpOptions();
    sim::CpuOptions subject; // default engine
    subject.windows.numWindows = ref.windows.numWindows / 2;
    EXPECT_THROW(sim::runLockstep(prog, ref, subject, {}), FatalError);
}

} // namespace
