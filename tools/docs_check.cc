/**
 * @file
 * docs_check: CI lint for the repository's Markdown.
 *
 * Mode 1 — link and anchor integrity (the default):
 *
 *     docs_check ROOT
 *
 * walks every *.md under ROOT (skipping build trees and dot
 * directories), extracts inline links outside fenced code blocks, and
 * fails on (a) a relative link whose target file does not exist and
 * (b) a `#fragment` that names no heading in the target file, using
 * GitHub's heading-to-anchor slug rules (lowercase, punctuation
 * stripped, spaces to hyphens, duplicates suffixed -1, -2, ...).
 * External schemes (http:, https:, mailto:) are not checked.
 *
 * Mode 2 — `--help`-vs-docs drift:
 *
 *     docs_check ROOT --help-drift EXE DOC
 *
 * runs `EXE --help`, collects every `--flag` token it prints, and
 * fails unless each one is mentioned in DOC. This pins the contract
 * that adding a driver flag requires documenting it (wired for
 * risc1_gdb against docs/DEBUGGING.md in tools/CMakeLists.txt).
 *
 * Exit status 0 when clean; 1 with one line per finding otherwise.
 */

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

int findings = 0;

void
report(const std::string &file, size_t line, const std::string &what)
{
    std::fprintf(stderr, "docs_check: %s:%zu: %s\n", file.c_str(), line,
                 what.c_str());
    ++findings;
}

/** Directories never scanned: VCS metadata and build trees. */
bool
skipDir(const std::string &name)
{
    return name.empty() || name[0] == '.' ||
           name.rfind("build", 0) == 0 || name == "node_modules";
}

std::vector<std::string>
readLines(const fs::path &path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        lines.push_back(line);
    }
    return lines;
}

bool
isFence(const std::string &line)
{
    const size_t i = line.find_first_not_of(" \t");
    if (i == std::string::npos)
        return false;
    return line.compare(i, 3, "```") == 0 || line.compare(i, 3, "~~~") == 0;
}

/**
 * GitHub's anchor slug for a heading: markdown formatting dropped,
 * lowercased, everything but alphanumerics/space/hyphen/underscore
 * removed, spaces to hyphens. Bytes >= 0x80 (UTF-8 letters like §)
 * are kept, which matches GitHub for the headings this repo uses.
 */
std::string
slugify(std::string text)
{
    std::string slug;
    for (char c : text) {
        const unsigned char u = static_cast<unsigned char>(c);
        if (u >= 0x80 || std::isalnum(u) || c == '_' || c == '-')
            slug += static_cast<char>(std::tolower(u));
        else if (c == ' ')
            slug += '-';
        // other punctuation (including backticks and periods): dropped
    }
    return slug;
}

/** The set of valid anchors in one markdown file (slugs, deduped). */
std::set<std::string>
anchorsOf(const fs::path &path)
{
    std::set<std::string> anchors;
    std::map<std::string, int> seen;
    bool in_fence = false;
    for (const std::string &line : readLines(path)) {
        if (isFence(line)) {
            in_fence = !in_fence;
            continue;
        }
        if (in_fence || line.empty() || line[0] != '#')
            continue;
        size_t level = line.find_first_not_of('#');
        if (level == std::string::npos || level > 6 || line[level] != ' ')
            continue;
        const std::string base = slugify(line.substr(level + 1));
        const int n = seen[base]++;
        anchors.insert(n == 0 ? base : base + "-" + std::to_string(n));
    }
    return anchors;
}

/** Inline-link targets on one line: the (...) part of [text](...). */
std::vector<std::string>
linkTargets(const std::string &line)
{
    std::vector<std::string> targets;
    for (size_t i = 0; (i = line.find("](", i)) != std::string::npos;) {
        i += 2;
        int depth = 1;
        std::string target;
        while (i < line.size() && depth > 0) {
            if (line[i] == '(')
                ++depth;
            else if (line[i] == ')' && --depth == 0)
                break;
            target += line[i++];
        }
        if (depth == 0) {
            // Strip an optional link title: (path "title").
            const size_t sp = target.find(' ');
            if (sp != std::string::npos)
                target.resize(sp);
            targets.push_back(target);
        }
    }
    return targets;
}

bool
isExternal(const std::string &target)
{
    return target.rfind("http://", 0) == 0 ||
           target.rfind("https://", 0) == 0 ||
           target.rfind("mailto:", 0) == 0;
}

void
checkFile(const fs::path &root, const fs::path &path)
{
    const std::string shown = fs::relative(path, root).string();
    bool in_fence = false;
    size_t lineno = 0;
    for (const std::string &line : readLines(path)) {
        ++lineno;
        if (isFence(line)) {
            in_fence = !in_fence;
            continue;
        }
        if (in_fence)
            continue;
        for (const std::string &target : linkTargets(line)) {
            if (target.empty() || isExternal(target))
                continue;
            const size_t hash = target.find('#');
            const std::string file_part = target.substr(0, hash);
            const std::string frag =
                hash == std::string::npos ? "" : target.substr(hash + 1);

            fs::path dest = path.parent_path();
            if (!file_part.empty()) {
                dest /= file_part;
                std::error_code ec;
                if (!fs::exists(dest, ec)) {
                    report(shown, lineno,
                           "dead link '" + target + "' (no such file '" +
                               file_part + "')");
                    continue;
                }
            } else {
                dest = path; // bare `#fragment`: this file
            }
            if (!frag.empty() && dest.extension() == ".md" &&
                !anchorsOf(dest).count(frag))
                report(shown, lineno,
                       "bad anchor '#" + frag + "' in link '" + target +
                           "' (no matching heading in " +
                           fs::relative(dest, root).string() + ")");
        }
    }
}

int
checkLinks(const fs::path &root)
{
    std::vector<fs::path> files;
    fs::recursive_directory_iterator it(root), end;
    while (it != end) {
        if (it->is_directory() &&
            skipDir(it->path().filename().string())) {
            it.disable_recursion_pending();
        } else if (it->is_regular_file() &&
                   it->path().extension() == ".md") {
            files.push_back(it->path());
        }
        ++it;
    }
    for (const fs::path &f : files)
        checkFile(root, f);
    std::printf("docs_check: %zu markdown files, %d findings\n",
                files.size(), findings);
    return findings == 0 ? 0 : 1;
}

/** Every `--flag` printed by `exe --help` must appear in `doc`. */
int
checkHelpDrift(const fs::path &exe, const fs::path &doc)
{
    std::string cmd = "'";
    cmd += exe.string();
    cmd += "' --help";
    std::FILE *pipe = popen(cmd.c_str(), "r");
    if (!pipe) {
        std::fprintf(stderr, "docs_check: cannot run %s\n", cmd.c_str());
        return 1;
    }
    std::string help;
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), pipe)) > 0)
        help.append(buf, got);
    if (pclose(pipe) != 0) {
        std::fprintf(stderr, "docs_check: %s failed\n", cmd.c_str());
        return 1;
    }

    std::set<std::string> flags;
    for (size_t i = 0; (i = help.find("--", i)) != std::string::npos;) {
        size_t j = i + 2;
        while (j < help.size() &&
               (std::isalnum(static_cast<unsigned char>(help[j])) ||
                help[j] == '-'))
            ++j;
        if (j > i + 2)
            flags.insert(help.substr(i, j - i));
        i = j;
    }
    if (flags.empty()) {
        std::fprintf(stderr,
                     "docs_check: %s printed no --flags at all\n",
                     cmd.c_str());
        return 1;
    }

    std::ifstream in(doc);
    if (!in) {
        std::fprintf(stderr, "docs_check: cannot read %s\n",
                     doc.string().c_str());
        return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    int missing = 0;
    for (const std::string &flag : flags) {
        if (text.find(flag) == std::string::npos) {
            std::fprintf(stderr,
                         "docs_check: %s documents nothing about '%s' "
                         "(printed by %s)\n",
                         doc.string().c_str(), flag.c_str(), cmd.c_str());
            ++missing;
        }
    }
    std::printf("docs_check: %zu flags in `%s`, %d undocumented\n",
                flags.size(), cmd.c_str(), missing);
    return missing == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc == 2)
        return checkLinks(argv[1]);
    if (argc == 5 && std::string(argv[2]) == "--help-drift")
        return checkHelpDrift(argv[3], argv[4]);
    std::fprintf(stderr,
                 "usage: docs_check ROOT\n"
                 "       docs_check ROOT --help-drift EXE DOC\n");
    return 2;
}
