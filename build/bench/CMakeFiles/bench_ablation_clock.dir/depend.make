# Empty dependencies file for bench_ablation_clock.
# This may be replaced when dependencies are built.
