file(REMOVE_RECURSE
  "CMakeFiles/bench_window_geometry.dir/bench_window_geometry.cc.o"
  "CMakeFiles/bench_window_geometry.dir/bench_window_geometry.cc.o.d"
  "bench_window_geometry"
  "bench_window_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_window_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
