# Empty compiler generated dependencies file for bench_window_geometry.
# This may be replaced when dependencies are built.
