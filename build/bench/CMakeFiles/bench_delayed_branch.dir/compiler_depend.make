# Empty compiler generated dependencies file for bench_delayed_branch.
# This may be replaced when dependencies are built.
