file(REMOVE_RECURSE
  "CMakeFiles/bench_delayed_branch.dir/bench_delayed_branch.cc.o"
  "CMakeFiles/bench_delayed_branch.dir/bench_delayed_branch.cc.o.d"
  "bench_delayed_branch"
  "bench_delayed_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_delayed_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
