file(REMOVE_RECURSE
  "CMakeFiles/bench_icache.dir/bench_icache.cc.o"
  "CMakeFiles/bench_icache.dir/bench_icache.cc.o.d"
  "bench_icache"
  "bench_icache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_icache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
