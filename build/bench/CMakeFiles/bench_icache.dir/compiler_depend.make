# Empty compiler generated dependencies file for bench_icache.
# This may be replaced when dependencies are built.
