# Empty compiler generated dependencies file for bench_mem_traffic.
# This may be replaced when dependencies are built.
