file(REMOVE_RECURSE
  "CMakeFiles/bench_mem_traffic.dir/bench_mem_traffic.cc.o"
  "CMakeFiles/bench_mem_traffic.dir/bench_mem_traffic.cc.o.d"
  "bench_mem_traffic"
  "bench_mem_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mem_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
