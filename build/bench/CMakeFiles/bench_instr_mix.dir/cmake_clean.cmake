file(REMOVE_RECURSE
  "CMakeFiles/bench_instr_mix.dir/bench_instr_mix.cc.o"
  "CMakeFiles/bench_instr_mix.dir/bench_instr_mix.cc.o.d"
  "bench_instr_mix"
  "bench_instr_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_instr_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
