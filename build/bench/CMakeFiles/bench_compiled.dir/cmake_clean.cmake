file(REMOVE_RECURSE
  "CMakeFiles/bench_compiled.dir/bench_compiled.cc.o"
  "CMakeFiles/bench_compiled.dir/bench_compiled.cc.o.d"
  "bench_compiled"
  "bench_compiled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compiled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
