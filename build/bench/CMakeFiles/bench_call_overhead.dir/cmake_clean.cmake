file(REMOVE_RECURSE
  "CMakeFiles/bench_call_overhead.dir/bench_call_overhead.cc.o"
  "CMakeFiles/bench_call_overhead.dir/bench_call_overhead.cc.o.d"
  "bench_call_overhead"
  "bench_call_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_call_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
