
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_isa_table.cc" "bench/CMakeFiles/bench_isa_table.dir/bench_isa_table.cc.o" "gcc" "bench/CMakeFiles/bench_isa_table.dir/bench_isa_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/risc1_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/risc1_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/vax/CMakeFiles/risc1_vax.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/risc1_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/risc1_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/risc1_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/risc1_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
