# Empty compiler generated dependencies file for bench_isa_table.
# This may be replaced when dependencies are built.
