file(REMOVE_RECURSE
  "CMakeFiles/bench_isa_table.dir/bench_isa_table.cc.o"
  "CMakeFiles/bench_isa_table.dir/bench_isa_table.cc.o.d"
  "bench_isa_table"
  "bench_isa_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_isa_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
