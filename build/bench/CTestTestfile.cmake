# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_isa_table_smoke "/root/repo/build/bench/bench_isa_table")
set_tests_properties(bench_isa_table_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_window_geometry_smoke "/root/repo/build/bench/bench_window_geometry")
set_tests_properties(bench_window_geometry_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;28;add_test;/root/repo/bench/CMakeLists.txt;0;")
