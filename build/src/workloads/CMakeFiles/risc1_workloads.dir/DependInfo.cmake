
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/rtlib.cc" "src/workloads/CMakeFiles/risc1_workloads.dir/rtlib.cc.o" "gcc" "src/workloads/CMakeFiles/risc1_workloads.dir/rtlib.cc.o.d"
  "/root/repo/src/workloads/wl_ackermann.cc" "src/workloads/CMakeFiles/risc1_workloads.dir/wl_ackermann.cc.o" "gcc" "src/workloads/CMakeFiles/risc1_workloads.dir/wl_ackermann.cc.o.d"
  "/root/repo/src/workloads/wl_bitmatrix.cc" "src/workloads/CMakeFiles/risc1_workloads.dir/wl_bitmatrix.cc.o" "gcc" "src/workloads/CMakeFiles/risc1_workloads.dir/wl_bitmatrix.cc.o.d"
  "/root/repo/src/workloads/wl_bittest.cc" "src/workloads/CMakeFiles/risc1_workloads.dir/wl_bittest.cc.o" "gcc" "src/workloads/CMakeFiles/risc1_workloads.dir/wl_bittest.cc.o.d"
  "/root/repo/src/workloads/wl_bubblesort.cc" "src/workloads/CMakeFiles/risc1_workloads.dir/wl_bubblesort.cc.o" "gcc" "src/workloads/CMakeFiles/risc1_workloads.dir/wl_bubblesort.cc.o.d"
  "/root/repo/src/workloads/wl_crc32.cc" "src/workloads/CMakeFiles/risc1_workloads.dir/wl_crc32.cc.o" "gcc" "src/workloads/CMakeFiles/risc1_workloads.dir/wl_crc32.cc.o.d"
  "/root/repo/src/workloads/wl_fibonacci.cc" "src/workloads/CMakeFiles/risc1_workloads.dir/wl_fibonacci.cc.o" "gcc" "src/workloads/CMakeFiles/risc1_workloads.dir/wl_fibonacci.cc.o.d"
  "/root/repo/src/workloads/wl_gcd.cc" "src/workloads/CMakeFiles/risc1_workloads.dir/wl_gcd.cc.o" "gcc" "src/workloads/CMakeFiles/risc1_workloads.dir/wl_gcd.cc.o.d"
  "/root/repo/src/workloads/wl_hanoi.cc" "src/workloads/CMakeFiles/risc1_workloads.dir/wl_hanoi.cc.o" "gcc" "src/workloads/CMakeFiles/risc1_workloads.dir/wl_hanoi.cc.o.d"
  "/root/repo/src/workloads/wl_linkedlist.cc" "src/workloads/CMakeFiles/risc1_workloads.dir/wl_linkedlist.cc.o" "gcc" "src/workloads/CMakeFiles/risc1_workloads.dir/wl_linkedlist.cc.o.d"
  "/root/repo/src/workloads/wl_matmul.cc" "src/workloads/CMakeFiles/risc1_workloads.dir/wl_matmul.cc.o" "gcc" "src/workloads/CMakeFiles/risc1_workloads.dir/wl_matmul.cc.o.d"
  "/root/repo/src/workloads/wl_perm.cc" "src/workloads/CMakeFiles/risc1_workloads.dir/wl_perm.cc.o" "gcc" "src/workloads/CMakeFiles/risc1_workloads.dir/wl_perm.cc.o.d"
  "/root/repo/src/workloads/wl_queens.cc" "src/workloads/CMakeFiles/risc1_workloads.dir/wl_queens.cc.o" "gcc" "src/workloads/CMakeFiles/risc1_workloads.dir/wl_queens.cc.o.d"
  "/root/repo/src/workloads/wl_quicksort.cc" "src/workloads/CMakeFiles/risc1_workloads.dir/wl_quicksort.cc.o" "gcc" "src/workloads/CMakeFiles/risc1_workloads.dir/wl_quicksort.cc.o.d"
  "/root/repo/src/workloads/wl_sieve.cc" "src/workloads/CMakeFiles/risc1_workloads.dir/wl_sieve.cc.o" "gcc" "src/workloads/CMakeFiles/risc1_workloads.dir/wl_sieve.cc.o.d"
  "/root/repo/src/workloads/wl_strops.cc" "src/workloads/CMakeFiles/risc1_workloads.dir/wl_strops.cc.o" "gcc" "src/workloads/CMakeFiles/risc1_workloads.dir/wl_strops.cc.o.d"
  "/root/repo/src/workloads/wl_strsearch.cc" "src/workloads/CMakeFiles/risc1_workloads.dir/wl_strsearch.cc.o" "gcc" "src/workloads/CMakeFiles/risc1_workloads.dir/wl_strsearch.cc.o.d"
  "/root/repo/src/workloads/wl_treesort.cc" "src/workloads/CMakeFiles/risc1_workloads.dir/wl_treesort.cc.o" "gcc" "src/workloads/CMakeFiles/risc1_workloads.dir/wl_treesort.cc.o.d"
  "/root/repo/src/workloads/workloads.cc" "src/workloads/CMakeFiles/risc1_workloads.dir/workloads.cc.o" "gcc" "src/workloads/CMakeFiles/risc1_workloads.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asm/CMakeFiles/risc1_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/vax/CMakeFiles/risc1_vax.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/risc1_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/risc1_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/risc1_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
