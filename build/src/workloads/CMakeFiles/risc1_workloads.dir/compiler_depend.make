# Empty compiler generated dependencies file for risc1_workloads.
# This may be replaced when dependencies are built.
