file(REMOVE_RECURSE
  "librisc1_workloads.a"
)
