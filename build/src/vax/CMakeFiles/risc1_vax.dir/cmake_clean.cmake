file(REMOVE_RECURSE
  "CMakeFiles/risc1_vax.dir/builder.cc.o"
  "CMakeFiles/risc1_vax.dir/builder.cc.o.d"
  "CMakeFiles/risc1_vax.dir/cpu.cc.o"
  "CMakeFiles/risc1_vax.dir/cpu.cc.o.d"
  "CMakeFiles/risc1_vax.dir/disasm.cc.o"
  "CMakeFiles/risc1_vax.dir/disasm.cc.o.d"
  "CMakeFiles/risc1_vax.dir/isa.cc.o"
  "CMakeFiles/risc1_vax.dir/isa.cc.o.d"
  "CMakeFiles/risc1_vax.dir/statsdump.cc.o"
  "CMakeFiles/risc1_vax.dir/statsdump.cc.o.d"
  "librisc1_vax.a"
  "librisc1_vax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/risc1_vax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
