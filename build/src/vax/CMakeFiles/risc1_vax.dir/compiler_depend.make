# Empty compiler generated dependencies file for risc1_vax.
# This may be replaced when dependencies are built.
