file(REMOVE_RECURSE
  "librisc1_vax.a"
)
