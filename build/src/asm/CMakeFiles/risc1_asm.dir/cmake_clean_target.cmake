file(REMOVE_RECURSE
  "librisc1_asm.a"
)
