# Empty dependencies file for risc1_asm.
# This may be replaced when dependencies are built.
