file(REMOVE_RECURSE
  "CMakeFiles/risc1_asm.dir/assembler.cc.o"
  "CMakeFiles/risc1_asm.dir/assembler.cc.o.d"
  "CMakeFiles/risc1_asm.dir/expander.cc.o"
  "CMakeFiles/risc1_asm.dir/expander.cc.o.d"
  "CMakeFiles/risc1_asm.dir/lexer.cc.o"
  "CMakeFiles/risc1_asm.dir/lexer.cc.o.d"
  "CMakeFiles/risc1_asm.dir/objfile.cc.o"
  "CMakeFiles/risc1_asm.dir/objfile.cc.o.d"
  "CMakeFiles/risc1_asm.dir/optimizer.cc.o"
  "CMakeFiles/risc1_asm.dir/optimizer.cc.o.d"
  "CMakeFiles/risc1_asm.dir/parser.cc.o"
  "CMakeFiles/risc1_asm.dir/parser.cc.o.d"
  "CMakeFiles/risc1_asm.dir/program.cc.o"
  "CMakeFiles/risc1_asm.dir/program.cc.o.d"
  "librisc1_asm.a"
  "librisc1_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/risc1_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
