
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cpu.cc" "src/sim/CMakeFiles/risc1_sim.dir/cpu.cc.o" "gcc" "src/sim/CMakeFiles/risc1_sim.dir/cpu.cc.o.d"
  "/root/repo/src/sim/icache.cc" "src/sim/CMakeFiles/risc1_sim.dir/icache.cc.o" "gcc" "src/sim/CMakeFiles/risc1_sim.dir/icache.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/sim/CMakeFiles/risc1_sim.dir/memory.cc.o" "gcc" "src/sim/CMakeFiles/risc1_sim.dir/memory.cc.o.d"
  "/root/repo/src/sim/pipeline.cc" "src/sim/CMakeFiles/risc1_sim.dir/pipeline.cc.o" "gcc" "src/sim/CMakeFiles/risc1_sim.dir/pipeline.cc.o.d"
  "/root/repo/src/sim/statsdump.cc" "src/sim/CMakeFiles/risc1_sim.dir/statsdump.cc.o" "gcc" "src/sim/CMakeFiles/risc1_sim.dir/statsdump.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asm/CMakeFiles/risc1_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/risc1_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/risc1_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
