# Empty dependencies file for risc1_sim.
# This may be replaced when dependencies are built.
