file(REMOVE_RECURSE
  "CMakeFiles/risc1_sim.dir/cpu.cc.o"
  "CMakeFiles/risc1_sim.dir/cpu.cc.o.d"
  "CMakeFiles/risc1_sim.dir/icache.cc.o"
  "CMakeFiles/risc1_sim.dir/icache.cc.o.d"
  "CMakeFiles/risc1_sim.dir/memory.cc.o"
  "CMakeFiles/risc1_sim.dir/memory.cc.o.d"
  "CMakeFiles/risc1_sim.dir/pipeline.cc.o"
  "CMakeFiles/risc1_sim.dir/pipeline.cc.o.d"
  "CMakeFiles/risc1_sim.dir/statsdump.cc.o"
  "CMakeFiles/risc1_sim.dir/statsdump.cc.o.d"
  "librisc1_sim.a"
  "librisc1_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/risc1_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
