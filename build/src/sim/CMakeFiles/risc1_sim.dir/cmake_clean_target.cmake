file(REMOVE_RECURSE
  "librisc1_sim.a"
)
