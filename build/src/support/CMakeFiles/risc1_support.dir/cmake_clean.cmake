file(REMOVE_RECURSE
  "CMakeFiles/risc1_support.dir/logging.cc.o"
  "CMakeFiles/risc1_support.dir/logging.cc.o.d"
  "CMakeFiles/risc1_support.dir/strings.cc.o"
  "CMakeFiles/risc1_support.dir/strings.cc.o.d"
  "librisc1_support.a"
  "librisc1_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/risc1_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
