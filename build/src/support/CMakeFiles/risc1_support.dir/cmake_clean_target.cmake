file(REMOVE_RECURSE
  "librisc1_support.a"
)
