# Empty dependencies file for risc1_support.
# This may be replaced when dependencies are built.
