file(REMOVE_RECURSE
  "librisc1_isa.a"
)
