# Empty dependencies file for risc1_isa.
# This may be replaced when dependencies are built.
