file(REMOVE_RECURSE
  "CMakeFiles/risc1_isa.dir/condition.cc.o"
  "CMakeFiles/risc1_isa.dir/condition.cc.o.d"
  "CMakeFiles/risc1_isa.dir/disasm.cc.o"
  "CMakeFiles/risc1_isa.dir/disasm.cc.o.d"
  "CMakeFiles/risc1_isa.dir/instruction.cc.o"
  "CMakeFiles/risc1_isa.dir/instruction.cc.o.d"
  "CMakeFiles/risc1_isa.dir/opcode.cc.o"
  "CMakeFiles/risc1_isa.dir/opcode.cc.o.d"
  "CMakeFiles/risc1_isa.dir/registers.cc.o"
  "CMakeFiles/risc1_isa.dir/registers.cc.o.d"
  "librisc1_isa.a"
  "librisc1_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/risc1_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
