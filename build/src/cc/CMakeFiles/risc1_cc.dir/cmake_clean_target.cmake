file(REMOVE_RECURSE
  "librisc1_cc.a"
)
