# Empty compiler generated dependencies file for risc1_cc.
# This may be replaced when dependencies are built.
