file(REMOVE_RECURSE
  "CMakeFiles/risc1_cc.dir/codegen_risc.cc.o"
  "CMakeFiles/risc1_cc.dir/codegen_risc.cc.o.d"
  "CMakeFiles/risc1_cc.dir/codegen_vax.cc.o"
  "CMakeFiles/risc1_cc.dir/codegen_vax.cc.o.d"
  "CMakeFiles/risc1_cc.dir/parser.cc.o"
  "CMakeFiles/risc1_cc.dir/parser.cc.o.d"
  "librisc1_cc.a"
  "librisc1_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/risc1_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
