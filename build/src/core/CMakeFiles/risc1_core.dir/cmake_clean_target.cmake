file(REMOVE_RECURSE
  "librisc1_core.a"
)
