# Empty compiler generated dependencies file for risc1_core.
# This may be replaced when dependencies are built.
