file(REMOVE_RECURSE
  "CMakeFiles/risc1_core.dir/calltrace.cc.o"
  "CMakeFiles/risc1_core.dir/calltrace.cc.o.d"
  "CMakeFiles/risc1_core.dir/experiments.cc.o"
  "CMakeFiles/risc1_core.dir/experiments.cc.o.d"
  "CMakeFiles/risc1_core.dir/run.cc.o"
  "CMakeFiles/risc1_core.dir/run.cc.o.d"
  "CMakeFiles/risc1_core.dir/table.cc.o"
  "CMakeFiles/risc1_core.dir/table.cc.o.d"
  "librisc1_core.a"
  "librisc1_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/risc1_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
