# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_vax[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_asm[1]_include.cmake")
include("/root/repo/build/tests/test_optimizer[1]_include.cmake")
include("/root/repo/build/tests/test_memory[1]_include.cmake")
include("/root/repo/build/tests/test_regfile[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_experiments[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_interrupts[1]_include.cmake")
include("/root/repo/build/tests/test_vax_disasm[1]_include.cmake")
include("/root/repo/build/tests/test_icache[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_objfile[1]_include.cmake")
include("/root/repo/build/tests/test_statsdump[1]_include.cmake")
include("/root/repo/build/tests/test_roundtrip[1]_include.cmake")
include("/root/repo/build/tests/test_rtlib[1]_include.cmake")
include("/root/repo/build/tests/test_calltrace[1]_include.cmake")
include("/root/repo/build/tests/test_table[1]_include.cmake")
include("/root/repo/build/tests/test_snapshot[1]_include.cmake")
include("/root/repo/build/tests/test_cc[1]_include.cmake")
include("/root/repo/build/tests/test_programs[1]_include.cmake")
include("/root/repo/build/tests/test_cc_fuzz[1]_include.cmake")
