file(REMOVE_RECURSE
  "CMakeFiles/test_cc_fuzz.dir/test_cc_fuzz.cc.o"
  "CMakeFiles/test_cc_fuzz.dir/test_cc_fuzz.cc.o.d"
  "test_cc_fuzz"
  "test_cc_fuzz.pdb"
  "test_cc_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cc_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
