file(REMOVE_RECURSE
  "CMakeFiles/test_objfile.dir/test_objfile.cc.o"
  "CMakeFiles/test_objfile.dir/test_objfile.cc.o.d"
  "test_objfile"
  "test_objfile.pdb"
  "test_objfile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_objfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
