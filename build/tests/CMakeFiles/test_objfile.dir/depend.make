# Empty dependencies file for test_objfile.
# This may be replaced when dependencies are built.
