# Empty dependencies file for test_vax.
# This may be replaced when dependencies are built.
