# Empty dependencies file for test_rtlib.
# This may be replaced when dependencies are built.
