file(REMOVE_RECURSE
  "CMakeFiles/test_statsdump.dir/test_statsdump.cc.o"
  "CMakeFiles/test_statsdump.dir/test_statsdump.cc.o.d"
  "test_statsdump"
  "test_statsdump.pdb"
  "test_statsdump[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_statsdump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
