# Empty dependencies file for test_statsdump.
# This may be replaced when dependencies are built.
