file(REMOVE_RECURSE
  "CMakeFiles/test_calltrace.dir/test_calltrace.cc.o"
  "CMakeFiles/test_calltrace.dir/test_calltrace.cc.o.d"
  "test_calltrace"
  "test_calltrace.pdb"
  "test_calltrace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_calltrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
