# Empty dependencies file for test_calltrace.
# This may be replaced when dependencies are built.
