file(REMOVE_RECURSE
  "CMakeFiles/interrupt_demo.dir/interrupt_demo.cpp.o"
  "CMakeFiles/interrupt_demo.dir/interrupt_demo.cpp.o.d"
  "interrupt_demo"
  "interrupt_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interrupt_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
