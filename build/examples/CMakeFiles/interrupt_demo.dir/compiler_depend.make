# Empty compiler generated dependencies file for interrupt_demo.
# This may be replaced when dependencies are built.
