# Empty dependencies file for risc_vs_cisc.
# This may be replaced when dependencies are built.
