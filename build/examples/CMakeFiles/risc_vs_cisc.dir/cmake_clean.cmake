file(REMOVE_RECURSE
  "CMakeFiles/risc_vs_cisc.dir/risc_vs_cisc.cpp.o"
  "CMakeFiles/risc_vs_cisc.dir/risc_vs_cisc.cpp.o.d"
  "risc_vs_cisc"
  "risc_vs_cisc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/risc_vs_cisc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
