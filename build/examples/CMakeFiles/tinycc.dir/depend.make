# Empty dependencies file for tinycc.
# This may be replaced when dependencies are built.
