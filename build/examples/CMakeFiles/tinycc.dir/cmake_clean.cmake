file(REMOVE_RECURSE
  "CMakeFiles/tinycc.dir/tinycc.cpp.o"
  "CMakeFiles/tinycc.dir/tinycc.cpp.o.d"
  "tinycc"
  "tinycc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinycc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
