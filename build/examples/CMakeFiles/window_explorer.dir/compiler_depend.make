# Empty compiler generated dependencies file for window_explorer.
# This may be replaced when dependencies are built.
