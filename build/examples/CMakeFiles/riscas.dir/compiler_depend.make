# Empty compiler generated dependencies file for riscas.
# This may be replaced when dependencies are built.
