file(REMOVE_RECURSE
  "CMakeFiles/riscas.dir/riscas.cpp.o"
  "CMakeFiles/riscas.dir/riscas.cpp.o.d"
  "riscas"
  "riscas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riscas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
