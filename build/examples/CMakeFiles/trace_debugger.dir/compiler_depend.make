# Empty compiler generated dependencies file for trace_debugger.
# This may be replaced when dependencies are built.
