file(REMOVE_RECURSE
  "CMakeFiles/trace_debugger.dir/trace_debugger.cpp.o"
  "CMakeFiles/trace_debugger.dir/trace_debugger.cpp.o.d"
  "trace_debugger"
  "trace_debugger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_debugger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
