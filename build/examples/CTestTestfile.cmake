# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_interrupt_demo "/root/repo/build/examples/interrupt_demo")
set_tests_properties(example_interrupt_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_risc_vs_cisc "/root/repo/build/examples/risc_vs_cisc" "hanoi")
set_tests_properties(example_risc_vs_cisc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_window_explorer "/root/repo/build/examples/window_explorer" "20")
set_tests_properties(example_window_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
