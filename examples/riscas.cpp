/**
 * @file
 * `riscas` — a command-line RISC I assembler/disassembler built on the
 * library: assembles a .s file and prints the listing, symbols, slot
 * statistics; `-o file.r1o` additionally writes an object file, and a
 * .r1o input disassembles instead.
 *
 * Usage: riscas file.s [--no-fill] [--explicit-slots] [-o out.r1o]
 *        riscas file.r1o
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "asm/assembler.hh"
#include "asm/objfile.hh"
#include "isa/disasm.hh"
#include "support/logging.hh"

int
main(int argc, char **argv)
{
    using namespace risc1;

    if (argc < 2) {
        std::cerr << "usage: riscas file.s [--no-fill] "
                     "[--explicit-slots]\n";
        return 2;
    }

    assembler::AsmOptions options;
    options.makeListing = true;
    std::string path;
    std::string out_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--no-fill")
            options.fillDelaySlots = false;
        else if (arg == "--explicit-slots")
            options.autoDelaySlots = false;
        else if (arg == "-o" && i + 1 < argc)
            out_path = argv[++i];
        else
            path = arg;
    }

    // Object-file input: disassemble it.
    if (path.size() > 4 && path.substr(path.size() - 4) == ".r1o") {
        assembler::Program prog = assembler::readObjectFile(path);
        std::cout << strprintf("entry 0x%08x, %u instructions\n\n",
                               prog.entry, prog.instructionCount);
        for (const assembler::Segment &seg : prog.segments) {
            for (uint32_t off = 0; off + 4 <= seg.bytes.size();
                 off += 4) {
                const uint32_t addr = seg.base + off;
                const uint32_t word = *prog.wordAt(addr);
                std::cout << strprintf(
                    "%08x  %08x  %s\n", addr, word,
                    isa::disassembleWord(word, addr).c_str());
            }
        }
        return 0;
    }

    std::ifstream in(path);
    if (!in) {
        std::cerr << "cannot open " << path << "\n";
        return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();

    assembler::AsmResult result = assembler::assemble(ss.str(), options);
    if (!result.ok()) {
        std::cerr << result.errorText();
        return 1;
    }

    std::cout << result.listing;
    std::cout << strprintf("\n%u instructions (%u code bytes, %u total "
                           "bytes), entry 0x%08x\n",
                           result.program.instructionCount,
                           result.program.codeBytes(),
                           result.program.totalBytes(),
                           result.program.entry);
    std::cout << strprintf("delay slots: %u/%u filled\n",
                           result.slotStats.filledSlots,
                           result.slotStats.totalSlots);
    if (!result.program.symbols.empty()) {
        std::cout << "\nsymbols:\n";
        for (const auto &[name, value] : result.program.symbols)
            std::cout << strprintf("  %08x  %s\n", value, name.c_str());
    }
    if (!out_path.empty()) {
        assembler::writeObjectFile(result.program, out_path);
        std::cout << "\nwrote " << out_path << "\n";
    }
    return 0;
}
