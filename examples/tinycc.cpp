/**
 * @file
 * `tinycc` — command-line tinyc compiler: compiles a .tc file and
 * either prints the generated RISC I assembly (-S), runs it on RISC I
 * (default), or runs it on vax80 (--vax). Exit code is main()'s result
 * truncated to 8 bits, like a little real toolchain.
 *
 * Usage: tinycc file.tc [-S] [--vax] [--stats]
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "asm/assembler.hh"
#include "cc/compiler.hh"
#include "sim/cpu.hh"
#include "sim/statsdump.hh"
#include "vax/cpu.hh"
#include "vax/statsdump.hh"

int
main(int argc, char **argv)
{
    using namespace risc1;

    std::string path;
    bool emit_asm = false, use_vax = false, want_stats = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-S")
            emit_asm = true;
        else if (arg == "--vax")
            use_vax = true;
        else if (arg == "--stats")
            want_stats = true;
        else
            path = arg;
    }
    if (path.empty()) {
        std::cerr << "usage: tinycc file.tc [-S] [--vax] [--stats]\n";
        return 2;
    }

    std::ifstream in(path);
    if (!in) {
        std::cerr << "cannot open " << path << "\n";
        return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string source = ss.str();

    if (emit_asm) {
        cc::RiscCompileResult compiled = cc::compileToRiscAsm(source);
        if (!compiled.ok) {
            std::cerr << "tinycc: " << compiled.error << "\n";
            return 1;
        }
        std::cout << compiled.assembly;
        return 0;
    }

    uint32_t result_value = 0;
    if (use_vax) {
        cc::VaxCompileResult compiled = cc::compileToVax(source);
        if (!compiled.ok) {
            std::cerr << "tinycc: " << compiled.error << "\n";
            return 1;
        }
        vax::VaxCpu cpu;
        cpu.load(compiled.program);
        auto run = cpu.run();
        if (!run.halted()) {
            std::cerr << "runtime fault: " << run.message << "\n";
            return 1;
        }
        result_value = cpu.memory().peek32(cc::CcResultAddr);
        std::cout << "main() = " << result_value << "  ["
                  << run.instructions << " insts, " << run.cycles
                  << " cycles on vax80]\n";
        if (want_stats)
            std::cout << vax::formatStats(cpu.stats());
    } else {
        cc::RiscCompileResult compiled = cc::compileToRiscAsm(source);
        if (!compiled.ok) {
            std::cerr << "tinycc: " << compiled.error << "\n";
            return 1;
        }
        sim::Cpu cpu;
        cpu.load(assembler::assembleOrDie(compiled.assembly));
        auto run = cpu.run();
        if (!run.halted()) {
            std::cerr << "runtime fault: " << run.message << "\n";
            return 1;
        }
        result_value = cpu.memory().peek32(cc::CcResultAddr);
        std::cout << "main() = " << result_value << "  ["
                  << run.instructions << " insts, " << run.cycles
                  << " cycles on RISC I]\n";
        if (want_stats)
            std::cout << sim::formatStats(cpu.stats());
    }
    return static_cast<int>(result_value & 0xff);
}
