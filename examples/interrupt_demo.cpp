/**
 * @file
 * Interrupt machinery demo: a background computation is interrupted on
 * a host-driven schedule; the handler ticks a softclock in guest
 * memory via the CALLINT/RETINT window mechanism, and the computation
 * finishes unperturbed — the paper's case that register windows give
 * fast interrupt entry for free.
 *
 * Usage: interrupt_demo [interrupt_period_insts]
 */

#include <cstdlib>
#include <iostream>

#include "asm/assembler.hh"
#include "sim/cpu.hh"
#include "sim/statsdump.hh"

int
main(int argc, char **argv)
{
    using namespace risc1;

    const uint64_t period =
        argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 97;

    assembler::Program prog = assembler::assembleOrDie(R"(
        .entry main
        .equ TICKS, 640       ; softclock cell
        .equ RESULT, 644

; Interrupt handler: one window push by hardware, tick, return.
isr:    ldl   (r0)TICKS, r16
        add   r16, 1, r16
        stl   r16, (r0)TICKS
        retint (r25)0

; Background computation: checksum a pseudo-random stream.
main:   clr   r16             ; checksum
        mov   40000, r17      ; iterations
        mov   0x1234, r18     ; xorshift state
loop:   sll   r18, 13, r19
        xor   r18, r19, r18
        srl   r18, 17, r19
        xor   r18, r19, r18
        sll   r18, 5, r19
        xor   r18, r19, r18
        add   r16, r18, r16
        subs  r17, 1, r17
        bne   loop
        stl   r16, (r0)RESULT
        halt
)");

    sim::CpuOptions options;
    options.interruptVector = *prog.symbol("isr");

    // Reference run with no interrupts at all.
    sim::Cpu quiet(options);
    quiet.load(prog);
    quiet.run();
    const uint32_t expected = quiet.memory().peek32(644);

    // Interrupted run: raise the line every `period` instructions.
    sim::Cpu noisy(options);
    noisy.load(prog);
    uint64_t next = period;
    while (!noisy.halted()) {
        noisy.step();
        if (noisy.stats().instructions >= next) {
            noisy.raiseInterrupt();
            next += period;
        }
    }

    const uint32_t result = noisy.memory().peek32(644);
    const uint32_t ticks = noisy.memory().peek32(640);
    std::cout << "interrupt period:     " << period << " instructions\n";
    std::cout << "interrupts taken:     "
              << noisy.stats().interruptsTaken << "\n";
    std::cout << "softclock ticks:      " << ticks << "\n";
    std::cout << "checksum (quiet run): 0x" << std::hex << expected
              << "\n";
    std::cout << "checksum (interrupted): 0x" << result << std::dec
              << "\n";
    std::cout << "computation intact:   "
              << (result == expected ? "yes" : "NO") << "\n\n";

    const double entry_exit_cycles =
        static_cast<double>(noisy.stats().cycles - quiet.stats().cycles) /
        static_cast<double>(noisy.stats().interruptsTaken);
    std::cout << "avg cycles per interrupt (entry + handler + exit): "
              << entry_exit_cycles << "\n";
    std::cout << "window overflows caused: "
              << noisy.stats().windowOverflows << "\n";
    return result == expected ? 0 : 1;
}
