/**
 * @file
 * Register-window explorer: run a deeply recursive program across
 * several window-file sizes and watch how overflow traps, spill
 * traffic and cycle counts respond — the paper's central design
 * argument, interactively.
 *
 * Usage: window_explorer [depth]   (default 24)
 */

#include <cstdlib>
#include <iostream>

#include "asm/assembler.hh"
#include "core/table.hh"
#include "sim/cpu.hh"
#include "support/logging.hh"

int
main(int argc, char **argv)
{
    using namespace risc1;
    using core::cell;

    const unsigned depth = argc > 1
                               ? static_cast<unsigned>(
                                     std::strtoul(argv[1], nullptr, 0))
                               : 24;

    // Straight-line recursion to the requested depth and back.
    const std::string source = strprintf(R"(
_start: mov   %u, r10
        call  descend
        halt
descend:
        cmp   r26, 0
        beq   bottom
        sub   r26, 1, r10
        call  descend
bottom: ret
)",
                                         depth);

    assembler::Program prog = assembler::assembleOrDie(source);

    std::cout << "recursion depth " << depth
              << "; one window per active procedure\n\n";
    core::Table table({"windows", "phys regs", "overflows", "underflows",
                       "regs spilled", "cycles", "cycles vs 16-win"});

    uint64_t best_cycles = 0;
    for (unsigned nwin : {16u, 12u, 8u, 6u, 4u, 2u}) {
        sim::CpuOptions options;
        options.windows.numWindows = nwin;
        sim::Cpu cpu(options);
        cpu.load(prog);
        sim::ExecResult result = cpu.run();
        if (!result.halted()) {
            std::cerr << "run failed: " << result.message << "\n";
            return 1;
        }
        if (nwin == 16)
            best_cycles = result.cycles;
        table.row({cell(uint64_t{nwin}),
                   cell(uint64_t{options.windows.physCount()}),
                   cell(cpu.stats().windowOverflows),
                   cell(cpu.stats().windowUnderflows),
                   cell(cpu.stats().spillWords),
                   cell(result.cycles),
                   cell(static_cast<double>(result.cycles) /
                        static_cast<double>(best_cycles))});
    }
    table.print(std::cout);
    std::cout << "\nNote the knee: once the window file covers the "
                 "call-depth excursion, traps vanish and extra windows "
                 "stop paying.\n";
    return 0;
}
