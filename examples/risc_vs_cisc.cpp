/**
 * @file
 * The paper's headline comparison on one benchmark: run a suite
 * workload on RISC I and on the vax80 baseline, and print the size,
 * time, call-cost and traffic numbers side by side.
 *
 * Usage: risc_vs_cisc [workload] [scale]
 * Default: fibonacci at its default scale. `risc_vs_cisc list` prints
 * the available workloads.
 */

#include <cstdlib>
#include <vector>
#include <iostream>

#include "core/run.hh"
#include "core/table.hh"
#include "sim/statsdump.hh"
#include "vax/statsdump.hh"

int
main(int argc, char **argv)
{
    using namespace risc1;
    using core::cell;

    bool want_stats = false;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--stats")
            want_stats = true;
        else
            positional.emplace_back(argv[i]);
    }

    std::string name = !positional.empty() ? positional[0] : "fibonacci";
    if (name == "list") {
        for (const auto &wl : workloads::allWorkloads())
            std::cout << wl.name << " — " << wl.description << "\n";
        return 0;
    }

    const workloads::Workload *wl = workloads::findWorkload(name);
    if (!wl) {
        std::cerr << "unknown workload '" << name
                  << "' (try: risc_vs_cisc list)\n";
        return 1;
    }
    const uint64_t scale =
        positional.size() > 1
            ? std::strtoull(positional[1].c_str(), nullptr, 0)
            : wl->defaultScale;

    std::cout << "workload: " << wl->name << " (" << wl->paperTag
              << "), scale " << scale << "\n\n";

    core::RiscRun risc = core::runRisc(*wl, scale);
    core::VaxRun vaxr = core::runVax(*wl, scale);

    const double risc_us =
        risc.stats.timeUs(sim::TimingModel{}.cycleTimeNs);
    const double vax_us = vaxr.stats.timeUs(vax::VaxTiming{}.cycleTimeNs);

    core::Table table({"metric", "RISC I", "vax80"});
    table.row({"result ok", risc.ok ? "yes" : "NO",
               vaxr.ok ? "yes" : "NO"});
    table.row({"code bytes", cell(uint64_t{risc.codeBytes}),
               cell(uint64_t{vaxr.codeBytes})});
    table.row({"instructions", cell(risc.stats.instructions),
               cell(vaxr.stats.instructions)});
    table.row({"cycles", cell(risc.stats.cycles),
               cell(vaxr.stats.cycles)});
    table.row({"CPI", cell(risc.stats.cpi()),
               cell(vaxr.stats.cpi())});
    table.row({"time (us)", cell(risc_us, 1), cell(vax_us, 1)});
    table.row({"calls", cell(risc.stats.calls),
               cell(vaxr.stats.calls)});
    table.row({"window overflows", cell(risc.stats.windowOverflows),
               "-"});
    table.row({"regs saved to stack", cell(risc.stats.spillWords),
               cell(vaxr.stats.savedRegs)});
    table.row({"data mem accesses",
               cell(risc.stats.memory.dataReads +
                    risc.stats.memory.dataWrites),
               cell(vaxr.stats.memory.dataReads +
                    vaxr.stats.memory.dataWrites)});
    table.print(std::cout);

    std::cout << "\nspeedup (time ratio vax80/RISC I): "
              << cell(risc_us > 0 ? vax_us / risc_us : 0) << "x\n";

    // Full gem5-style dumps on request.
    if (want_stats) {
        std::cout << "\n" << sim::formatStats(risc.stats) << "\n"
                  << vax::formatStats(vaxr.stats);
    }
    return risc.ok && vaxr.ok ? 0 : 1;
}
