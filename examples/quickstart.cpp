/**
 * @file
 * Quickstart: assemble a RISC I program from source, run it, and look
 * at the results — the five-minute tour of the public API.
 */

#include <iostream>

#include "asm/assembler.hh"
#include "sim/cpu.hh"

int
main()
{
    using namespace risc1;

    // 1. Some RISC I assembly: sum the squares 1..10 (no multiply
    //    instruction — squares come from repeated addition).
    const char *source = R"(
; sum of squares of 1..10
_start: clr   r16            ; total
        mov   1, r17         ; i
outer:  cmp   r17, 10
        bgt   done
        clr   r18            ; square accumulator
        mov   r17, r19       ; counter
inner:  cmp   r19, 0
        beq   add_sq
        add   r18, r17, r18
        sub   r19, 1, r19
        b     inner
add_sq: add   r16, r18, r16
        add   r17, 1, r17
        b     outer
done:   stl   r16, (r0)128   ; result -> memory[128]
        halt
)";

    // 2. Assemble (with a listing, so you can see the encoding and the
    //    delay slots the assembler managed).
    assembler::AsmOptions options;
    options.makeListing = true;
    assembler::AsmResult assembled = assembler::assemble(source, options);
    if (!assembled.ok()) {
        std::cerr << "assembly failed:\n" << assembled.errorText();
        return 1;
    }
    std::cout << "Listing:\n" << assembled.listing << "\n";
    std::cout << "Delay slots: " << assembled.slotStats.filledSlots
              << "/" << assembled.slotStats.totalSlots << " filled\n\n";

    // 3. Run on the RISC I processor model (8 register windows).
    sim::Cpu cpu;
    cpu.load(assembled.program);
    sim::ExecResult result = cpu.run();

    // 4. Inspect the outcome.
    std::cout << "halted: " << (result.halted() ? "yes" : "no") << "\n";
    std::cout << "sum of squares 1..10 = " << cpu.memory().peek32(128)
              << " (expect 385)\n";
    std::cout << "instructions: " << result.instructions
              << ", cycles: " << result.cycles
              << ", CPI: " << cpu.stats().cpi() << "\n";
    std::cout << "memory accesses: "
              << cpu.stats().memory.totalAccesses() << "\n";
    return result.halted() && cpu.memory().peek32(128) == 385 ? 0 : 1;
}
