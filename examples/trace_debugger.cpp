/**
 * @file
 * Instruction-level trace debugger: single-step a suite workload (or a
 * .s file) printing the disassembly, current window, call depth and a
 * few registers — the tool you want when writing RISC I assembly.
 *
 * Usage: trace_debugger [workload|file.s] [max_steps]
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "asm/assembler.hh"
#include "isa/disasm.hh"
#include "sim/cpu.hh"
#include "sim/fault.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace risc1;

    const std::string what = argc > 1 ? argv[1] : "fibonacci";
    const uint64_t max_steps =
        argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 64;

    assembler::Program prog;
    if (what.size() > 2 && what.substr(what.size() - 2) == ".s") {
        std::ifstream in(what);
        if (!in) {
            std::cerr << "cannot open " << what << "\n";
            return 1;
        }
        std::stringstream ss;
        ss << in.rdbuf();
        prog = assembler::assembleOrDie(ss.str());
    } else {
        const workloads::Workload *wl = workloads::findWorkload(what);
        if (!wl) {
            std::cerr << "unknown workload '" << what << "'\n";
            return 1;
        }
        prog = workloads::buildRisc(*wl, wl->defaultScale);
    }

    sim::Cpu cpu;
    cpu.load(prog);

    std::cout << "   step        pc  win depth  r10      r16      r26     "
                 " instruction\n";
    for (uint64_t step = 0; step < max_steps && !cpu.halted(); ++step) {
        const uint32_t pc = cpu.pc();
        const uint32_t word = cpu.memory().peek32(pc);
        const isa::DecodeResult dec = isa::decode(word);
        std::printf("%7llu  %08x  w%-2u  %4llu  %08x %08x %08x  %s\n",
                    static_cast<unsigned long long>(step), pc, cpu.cwp(),
                    static_cast<unsigned long long>(
                        cpu.stats().callDepth),
                    cpu.reg(10), cpu.reg(16), cpu.reg(26),
                    dec.ok ? isa::disassembleWord(word, pc).c_str()
                           : "<illegal>");
        try {
            cpu.step();
        } catch (const sim::SimFault &fault) {
            std::cout << "fault: " << fault.message << "\n";
            return 1;
        }
    }
    if (cpu.halted())
        std::cout << "(halted after " << cpu.stats().instructions
                  << " instructions)\n";
    else
        std::cout << "(stopped at step limit; rerun with a larger "
                     "max_steps)\n";
    return 0;
}
